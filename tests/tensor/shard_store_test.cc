#include "tensor/shard_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/io.h"
#include "tensor/qgemm.h"

namespace came::tensor {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/shard_store_" + name + "_" +
                          std::to_string(::getpid());
  // Fresh directory per test: drop any leftovers from a previous run.
  std::remove((dir + "/manifest").c_str());
  for (int i = 0; i < 64; ++i) {
    std::remove((dir + "/slab_" + std::to_string(i) + ".bin").c_str());
  }
  return dir;
}

float RowValue(int64_t row, int64_t col) {
  return static_cast<float>(row) * 1000.0f + static_cast<float>(col) + 0.25f;
}

void FillStore(ShardStore* s) {
  for (int64_t r = 0; r < s->rows(); ++r) {
    float* row = s->MutableRow(r);
    for (int64_t c = 0; c < s->dim(); ++c) row[c] = RowValue(r, c);
  }
}

void ExpectStoreContents(ShardStore* s) {
  for (int64_t r = 0; r < s->rows(); ++r) {
    const float* row = s->Row(r);
    for (int64_t c = 0; c < s->dim(); ++c) {
      ASSERT_EQ(row[c], RowValue(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(ShardStoreTest, InRamRoundTrip) {
  Result<ShardStore> s = ShardStore::InRam(17, 5);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s.value().in_ram());
  EXPECT_EQ(s.value().num_shards(), 1);
  EXPECT_EQ(s.value().rows_per_shard(), 17);
  FillStore(&s.value());
  ExpectStoreContents(&s.value());
  // Zero-filled at construction: untouched store reads zeros.
  Result<ShardStore> z = ShardStore::InRam(4, 3);
  ASSERT_TRUE(z.ok());
  for (int64_t r = 0; r < 4; ++r) {
    const float* row = z.value().Row(r);
    for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(row[c], 0.0f);
  }
}

TEST(ShardStoreTest, RejectsDegenerateShapes) {
  EXPECT_FALSE(ShardStore::InRam(0, 4).ok());
  EXPECT_FALSE(ShardStore::InRam(4, 0).ok());
  EXPECT_FALSE(ShardStore::Create(TestDir("degenerate"), -1, 4).ok());
}

TEST(ShardStoreTest, CreateWriteSealOpenRoundTrip) {
  const std::string dir = TestDir("roundtrip");
  ShardStoreOptions opts;
  opts.rows_per_shard = 16;
  opts.max_resident_shards = 2;
  Result<ShardStore> created = ShardStore::Create(dir, 100, 8, opts);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardStore& s = created.value();
  EXPECT_EQ(s.num_shards(), 7);  // ceil(100 / 16)
  EXPECT_FALSE(s.in_ram());
  FillStore(&s);
  ExpectStoreContents(&s);
  // The residency budget was honoured: writing 7 shards through 2 slots
  // must have evicted.
  EXPECT_LE(s.GetStats().resident_shards, 2);
  EXPECT_GT(s.GetStats().evictions, 0);
  ASSERT_TRUE(s.Seal().ok());

  ShardStoreOptions open_opts;
  open_opts.max_resident_shards = 3;
  Result<ShardStore> reopened = ShardStore::Open(dir, open_opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().rows(), 100);
  EXPECT_EQ(reopened.value().dim(), 8);
  EXPECT_EQ(reopened.value().rows_per_shard(), 16);
  ExpectStoreContents(&reopened.value());
  EXPECT_LE(reopened.value().GetStats().resident_shards, 3);
}

TEST(ShardStoreTest, ZeroRowsPerShardMeansSingleShard) {
  const std::string dir = TestDir("single");
  Result<ShardStore> s = ShardStore::Create(dir, 33, 4);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s.value().num_shards(), 1);
  EXPECT_EQ(s.value().rows_per_shard(), 33);
  EXPECT_EQ(s.value().ShardEnd(0), 33);
}

TEST(ShardStoreTest, PanelAccessRespectsShardBoundaries) {
  const std::string dir = TestDir("panels");
  ShardStoreOptions opts;
  opts.rows_per_shard = 10;
  Result<ShardStore> created = ShardStore::Create(dir, 25, 3, opts);
  ASSERT_TRUE(created.ok());
  ShardStore& s = created.value();
  FillStore(&s);
  EXPECT_EQ(s.ShardEnd(0), 10);
  EXPECT_EQ(s.ShardEnd(9), 10);
  EXPECT_EQ(s.ShardEnd(10), 20);
  EXPECT_EQ(s.ShardEnd(24), 25);  // last shard is short
  const float* panel = s.PanelRows(10, 20);
  for (int64_t r = 0; r < 10; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(panel[r * 3 + c], RowValue(10 + r, c));
    }
  }
#if GTEST_HAS_DEATH_TEST
  EXPECT_DEATH(s.PanelRows(5, 15), "crosses a shard boundary");
#endif
}

TEST(ShardStoreTest, LruEvictsLeastRecentlyUsed) {
  const std::string dir = TestDir("lru");
  ShardStoreOptions opts;
  opts.rows_per_shard = 4;
  opts.max_resident_shards = 2;
  Result<ShardStore> created = ShardStore::Create(dir, 16, 2, opts);
  ASSERT_TRUE(created.ok());
  ShardStore& s = created.value();
  (void)s.Row(0);   // shard 0 resident
  (void)s.Row(4);   // shard 1 resident
  (void)s.Row(0);   // refresh shard 0
  (void)s.Row(8);   // shard 2 -> evicts shard 1 (the LRU)
  const auto before = s.GetStats();
  (void)s.Row(0);   // still resident: a hit, no new mapping
  const auto after = s.GetStats();
  EXPECT_EQ(after.map_misses, before.map_misses);
  EXPECT_EQ(after.map_hits, before.map_hits + 1);
  EXPECT_EQ(after.resident_shards, 2);
  EXPECT_EQ(after.evictions, 1);
}

TEST(ShardStoreTest, LruEvictionOrderIsObservableViaResidency) {
  const std::string dir = TestDir("lru_order");
  ShardStoreOptions opts;
  opts.rows_per_shard = 4;
  opts.max_resident_shards = 2;
  Result<ShardStore> created = ShardStore::Create(dir, 20, 2, opts);
  ASSERT_TRUE(created.ok());
  ShardStore& s = created.value();
  (void)s.PanelRows(0, 4);    // shard 0
  (void)s.PanelRows(4, 8);    // shard 1
  EXPECT_TRUE(s.ShardResident(0));
  EXPECT_TRUE(s.ShardResident(1));
  (void)s.PanelRows(8, 12);   // shard 2 -> evicts 0 (oldest)
  EXPECT_FALSE(s.ShardResident(0));
  EXPECT_TRUE(s.ShardResident(1));
  EXPECT_TRUE(s.ShardResident(2));
  (void)s.Row(4);             // refresh shard 1 past shard 2
  (void)s.PanelRows(12, 16);  // shard 3 -> evicts 2, NOT the refreshed 1
  EXPECT_TRUE(s.ShardResident(1));
  EXPECT_FALSE(s.ShardResident(2));
  EXPECT_TRUE(s.ShardResident(3));
  EXPECT_EQ(s.GetStats().evictions, 2);
  EXPECT_EQ(s.GetStats().resident_shards, 2);
}

TEST(ShardStoreTest, PinLeaseBlocksEvictionUntilReleased) {
  const std::string dir = TestDir("pins");
  ShardStoreOptions opts;
  opts.rows_per_shard = 4;
  opts.max_resident_shards = 1;
  Result<ShardStore> created = ShardStore::Create(dir, 12, 2, opts);
  ASSERT_TRUE(created.ok());
  ShardStore& s = created.value();
  FillStore(&s);  // evicts while filling; only deltas matter below
  const int64_t lease = s.PinPanel(0, 4);  // shard 0 pinned (maps it first)
  EXPECT_EQ(lease, 0);
  const int64_t evictions_after_pin = s.GetStats().evictions;
  // Shard 1 needs a slot but the only resident slab is pinned: the store
  // must map past the budget instead of invalidating the lease.
  (void)s.PanelRows(4, 8);
  EXPECT_TRUE(s.ShardResident(0));
  EXPECT_TRUE(s.ShardResident(1));
  ShardStore::Stats stats = s.GetStats();
  EXPECT_EQ(stats.evictions, evictions_after_pin);
  EXPECT_GT(stats.pin_blocked_evictions, 0);
  EXPECT_EQ(stats.resident_shards, 2);
  // Pinned pointers stay valid across the over-budget mapping.
  const float* pinned = s.PanelRows(0, 4);
  EXPECT_EQ(pinned[0], RowValue(0, 0));

  s.UnpinPanel(lease);
  // With the lease gone the next miss reclaims down to the budget.
  (void)s.PanelRows(8, 12);
  stats = s.GetStats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.resident_shards, 1);
  EXPECT_TRUE(s.ShardResident(2));
  EXPECT_FALSE(s.ShardResident(0));
  EXPECT_FALSE(s.ShardResident(1));
}

TEST(ShardStoreTest, NestedPinsMustAllReleaseBeforeEviction) {
  const std::string dir = TestDir("nested_pins");
  ShardStoreOptions opts;
  opts.rows_per_shard = 4;
  opts.max_resident_shards = 1;
  Result<ShardStore> created = ShardStore::Create(dir, 12, 2, opts);
  ASSERT_TRUE(created.ok());
  ShardStore& s = created.value();
  const int64_t a = s.PinPanel(0, 4);
  const int64_t b = s.PinPanel(0, 4);  // pins nest
  s.UnpinPanel(a);
  (void)s.PanelRows(4, 8);  // one lease still held: no eviction of 0
  EXPECT_TRUE(s.ShardResident(0));
  s.UnpinPanel(b);
  // Next miss (shard 2) reclaims down to the budget of 1: both earlier
  // slabs — the formerly pinned 0 included — are now fair victims.
  (void)s.PanelRows(8, 12);
  EXPECT_GT(s.GetStats().evictions, 0);
  EXPECT_FALSE(s.ShardResident(0));
  EXPECT_TRUE(s.ShardResident(2));
}

TEST(ShardStoreTest, QuantizedAccessorsShareTheLruClock) {
  // Interleaved QuantPanelRows / PanelScales touches must refresh the
  // same residency clock as fp32 PanelRows, so eviction order reflects
  // true recency across accessor kinds.
  const std::string f32_dir = TestDir("qclock_f32");
  ShardStoreOptions opts;
  opts.rows_per_shard = 4;
  Result<ShardStore> created = ShardStore::Create(f32_dir, 16, 2, opts);
  ASSERT_TRUE(created.ok());
  FillStore(&created.value());
  ASSERT_TRUE(created.value().Seal().ok());

  ShardStoreOptions qopts;
  qopts.max_resident_shards = 2;
  Result<ShardStore> quantized = ShardStore::Quantize(
      &created.value(), TestDir("qclock_int8"), ShardDtype::kInt8, qopts);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  ShardStore q = std::move(quantized).value();
  // Quantize sweeps every shard; start from a known residency state.
  (void)q.QuantPanelRows(0, 4);    // shard 0
  (void)q.PanelScales(4, 8);       // shard 1
  (void)q.QuantPanelRows(0, 4);    // refresh 0 via the codes accessor
  (void)q.PanelScales(8, 12);      // shard 2 -> evicts 1, not refreshed 0
  EXPECT_TRUE(q.ShardResident(0));
  EXPECT_FALSE(q.ShardResident(1));
  EXPECT_TRUE(q.ShardResident(2));
}

TEST(ShardStoreTest, ContentCrcIndependentOfGeometry) {
  const std::string dir_a = TestDir("crc_a");
  const std::string dir_b = TestDir("crc_b");
  ShardStoreOptions a_opts;
  a_opts.rows_per_shard = 7;
  a_opts.max_resident_shards = 1;
  Result<ShardStore> a = ShardStore::Create(dir_a, 40, 6, a_opts);
  Result<ShardStore> b = ShardStore::Create(dir_b, 40, 6);  // one shard
  Result<ShardStore> c = ShardStore::InRam(40, 6);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  FillStore(&a.value());
  FillStore(&b.value());
  FillStore(&c.value());
  const uint32_t crc = a.value().ContentCrc32();
  EXPECT_EQ(crc, b.value().ContentCrc32());
  EXPECT_EQ(crc, c.value().ContentCrc32());
}

TEST(ShardStoreTest, OpenRefusesUnsealedStore) {
  const std::string dir = TestDir("unsealed");
  Result<ShardStore> created = ShardStore::Create(dir, 8, 2);
  ASSERT_TRUE(created.ok());
  FillStore(&created.value());
  // No Seal(): the manifest still says "unsealed".
  Result<ShardStore> reopened = ShardStore::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), Status::Code::kFailedPrecondition);
}

TEST(ShardStoreTest, MutatingSealedStoreUnsealsManifest) {
  const std::string dir = TestDir("unseal_on_write");
  Result<ShardStore> created = ShardStore::Create(dir, 8, 2);
  ASSERT_TRUE(created.ok());
  FillStore(&created.value());
  ASSERT_TRUE(created.value().Seal().ok());
  {
    Result<ShardStore> opened = ShardStore::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    opened.value().MutableRow(3)[0] = 9.0f;
    // The first mutation republished the manifest as unsealed, so a crash
    // here would read as "mid-write", not as stale-but-sealed.
  }
  Result<ShardStore> stale = ShardStore::Open(dir);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), Status::Code::kFailedPrecondition);
}

// --- corruption matrix ----------------------------------------------------

class ShardStoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TestDir("corrupt");
    ShardStoreOptions opts;
    opts.rows_per_shard = 4;
    Result<ShardStore> created = ShardStore::Create(dir_, 10, 2, opts);
    ASSERT_TRUE(created.ok());
    FillStore(&created.value());
    ASSERT_TRUE(created.value().Seal().ok());
  }

  static std::string ReadAll(const std::string& path) {
    std::string out;
    const Status st = io::ReadFile(path, &out);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  static void WriteAll(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    ASSERT_TRUE(out.good());
  }

  std::string manifest() const { return dir_ + "/manifest"; }
  std::string slab(int i) const {
    return dir_ + "/slab_" + std::to_string(i) + ".bin";
  }

  std::string dir_;
};

TEST_F(ShardStoreCorruptionTest, EveryManifestByteFlipIsDetected) {
  const std::string pristine = ReadAll(manifest());
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string bad = pristine;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    WriteAll(manifest(), bad);
    Result<ShardStore> opened = ShardStore::Open(dir_);
    EXPECT_FALSE(opened.ok()) << "flip at manifest byte " << i;
  }
  WriteAll(manifest(), pristine);
  EXPECT_TRUE(ShardStore::Open(dir_).ok());
}

TEST_F(ShardStoreCorruptionTest, EveryManifestTruncationIsDetected) {
  const std::string pristine = ReadAll(manifest());
  for (size_t len = 0; len < pristine.size(); ++len) {
    WriteAll(manifest(), pristine.substr(0, len));
    EXPECT_FALSE(ShardStore::Open(dir_).ok()) << "truncated to " << len;
  }
  WriteAll(manifest(), pristine);
  EXPECT_TRUE(ShardStore::Open(dir_).ok());
}

TEST_F(ShardStoreCorruptionTest, ManifestTrailingByteIsDetected) {
  const std::string pristine = ReadAll(manifest());
  WriteAll(manifest(), pristine + "x");
  Result<ShardStore> opened = ShardStore::Open(dir_);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), Status::Code::kCorruption);
}

TEST_F(ShardStoreCorruptionTest, SlabBitFlipIsDetected) {
  const std::string pristine = ReadAll(slab(1));
  for (const size_t at : {size_t{0}, pristine.size() / 2, pristine.size() - 1}) {
    std::string bad = pristine;
    bad[at] = static_cast<char>(bad[at] ^ 0x01);
    WriteAll(slab(1), bad);
    Result<ShardStore> opened = ShardStore::Open(dir_);
    ASSERT_FALSE(opened.ok()) << "flip at slab byte " << at;
    EXPECT_EQ(opened.status().code(), Status::Code::kCorruption);
  }
  WriteAll(slab(1), pristine);
  EXPECT_TRUE(ShardStore::Open(dir_).ok());
}

TEST_F(ShardStoreCorruptionTest, SlabTruncationIsDetected) {
  const std::string pristine = ReadAll(slab(2));
  WriteAll(slab(2), pristine.substr(0, pristine.size() - 4));
  Result<ShardStore> opened = ShardStore::Open(dir_);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), Status::Code::kCorruption);
}

TEST_F(ShardStoreCorruptionTest, SlabTrailingBytesAreDetected) {
  const std::string pristine = ReadAll(slab(0));
  WriteAll(slab(0), pristine + std::string(4, '\0'));
  Result<ShardStore> opened = ShardStore::Open(dir_);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), Status::Code::kCorruption);
}

TEST_F(ShardStoreCorruptionTest, SizeCheckOnlyOpenStillCatchesTruncation) {
  ShardStoreOptions opts;
  opts.verify_on_open = false;
  EXPECT_TRUE(ShardStore::Open(dir_, opts).ok());
  const std::string pristine = ReadAll(slab(0));
  WriteAll(slab(0), pristine.substr(0, pristine.size() - 1));
  EXPECT_FALSE(ShardStore::Open(dir_, opts).ok());
}

// --- quantized stores -----------------------------------------------------

class ShardStoreQuantizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    src_dir_ = TestDir("quant_src");
    ShardStoreOptions opts;
    opts.rows_per_shard = 4;  // ceil(10 / 4) = 3 shards, short tail
    Result<ShardStore> created = ShardStore::Create(src_dir_, 10, 3, opts);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    src_ = std::move(created).value();
    FillStore(&src_);
    // An all-zero row: its int8 scale must round-trip as exactly 0.
    std::memset(src_.MutableRow(6), 0, sizeof(float) * 3);
    ASSERT_TRUE(src_.Seal().ok());
  }

  std::string src_dir_;
  ShardStore src_;
};

TEST_F(ShardStoreQuantizeTest, Int8QuantizeMatchesDirectQuantization) {
  const std::string dir = TestDir("quant_int8");
  Result<ShardStore> made = ShardStore::Quantize(&src_, dir, ShardDtype::kInt8);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  ShardStore& q = made.value();
  EXPECT_EQ(q.dtype(), ShardDtype::kInt8);
  EXPECT_EQ(q.rows(), 10);
  EXPECT_EQ(q.dim(), 3);
  EXPECT_EQ(q.rows_per_shard(), 4);  // geometry inherited
  EXPECT_EQ(q.num_shards(), 3);

  // Per shard: the slab contents equal quantizing the fp32 rows directly.
  for (int64_t begin = 0; begin < 10; begin = q.ShardEnd(begin)) {
    const int64_t end = q.ShardEnd(begin);
    const int64_t rows = end - begin;
    const float* fp32 = src_.PanelRows(begin, end);
    std::vector<int8_t> want_q(static_cast<size_t>(rows * 3));
    std::vector<float> want_s(static_cast<size_t>(rows));
    ASSERT_TRUE(qgemm::QuantizeRowsInt8(fp32, rows, 3, want_q.data(),
                                        want_s.data())
                    .ok());
    EXPECT_EQ(std::memcmp(q.QuantPanelRows(begin, end), want_q.data(),
                          want_q.size()),
              0)
        << "shard at row " << begin;
    EXPECT_EQ(std::memcmp(q.PanelScales(begin, end), want_s.data(),
                          want_s.size() * sizeof(float)),
              0);
  }
  EXPECT_EQ(q.PanelScales(4, 8)[2], 0.0f);  // row 6, the all-zero row

  // Sealed from birth: a fresh Open succeeds and verifies CRCs.
  Result<ShardStore> reopened = ShardStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().dtype(), ShardDtype::kInt8);
  EXPECT_EQ(reopened.value().ContentCrc32(), q.ContentCrc32());

#if GTEST_HAS_DEATH_TEST
  // Quantized stores are immutable and fp32-accessor-free.
  EXPECT_DEATH(q.MutableRow(0), "");
  EXPECT_DEATH(q.Row(0), "");
  EXPECT_DEATH(q.PanelRows(0, 4), "");
  EXPECT_DEATH(q.Bf16PanelRows(0, 4), "");
#endif
}

TEST_F(ShardStoreQuantizeTest, Bf16QuantizeMatchesDirectEncoding) {
  const std::string dir = TestDir("quant_bf16");
  Result<ShardStore> made = ShardStore::Quantize(&src_, dir, ShardDtype::kBf16);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  ShardStore& q = made.value();
  EXPECT_EQ(q.dtype(), ShardDtype::kBf16);
  for (int64_t begin = 0; begin < 10; begin = q.ShardEnd(begin)) {
    const int64_t end = q.ShardEnd(begin);
    const int64_t rows = end - begin;
    std::vector<uint16_t> want(static_cast<size_t>(rows * 3));
    ASSERT_TRUE(qgemm::EncodeRowsBf16(src_.PanelRows(begin, end), rows, 3,
                                      want.data())
                    .ok());
    EXPECT_EQ(std::memcmp(q.Bf16PanelRows(begin, end), want.data(),
                          want.size() * sizeof(uint16_t)),
              0);
  }
  Result<ShardStore> reopened = ShardStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().dtype(), ShardDtype::kBf16);
}

TEST_F(ShardStoreQuantizeTest, QuantizeRejectsBadInputs) {
  // Target dtype must be a quantized one.
  EXPECT_FALSE(
      ShardStore::Quantize(&src_, TestDir("quant_f32"), ShardDtype::kF32)
          .ok());
  // Destination must not already hold a manifest.
  EXPECT_FALSE(
      ShardStore::Quantize(&src_, src_dir_, ShardDtype::kInt8).ok());
  // A quantized store cannot be quantized again.
  const std::string dir = TestDir("quant_again_src");
  Result<ShardStore> once = ShardStore::Quantize(&src_, dir, ShardDtype::kInt8);
  ASSERT_TRUE(once.ok());
  EXPECT_FALSE(ShardStore::Quantize(&once.value(), TestDir("quant_again_dst"),
                                    ShardDtype::kBf16)
                   .ok());
}

TEST_F(ShardStoreQuantizeTest, QuantizeRejectsNonFiniteRows) {
  const std::string bad_dir = TestDir("quant_nan_src");
  Result<ShardStore> created = ShardStore::Create(bad_dir, 4, 2);
  ASSERT_TRUE(created.ok());
  FillStore(&created.value());
  created.value().MutableRow(2)[1] = std::numeric_limits<float>::quiet_NaN();
  for (const ShardDtype dtype : {ShardDtype::kInt8, ShardDtype::kBf16}) {
    Result<ShardStore> q = ShardStore::Quantize(
        &created.value(), TestDir("quant_nan_dst"), dtype);
    ASSERT_FALSE(q.ok()) << ShardDtypeName(dtype);
    EXPECT_EQ(q.status().code(), Status::Code::kInvalidArgument);
  }
}

// Corruption matrix for the quantized container: the v2 manifest (with
// its dtype byte) and the int8 slab layout (padded rows + scale block)
// must be covered by the same CRC framing as fp32 stores.
class QuantShardCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string src_dir = TestDir("qcorrupt_src");
    ShardStoreOptions opts;
    opts.rows_per_shard = 4;
    Result<ShardStore> created = ShardStore::Create(src_dir, 10, 3, opts);
    ASSERT_TRUE(created.ok());
    FillStore(&created.value());
    ASSERT_TRUE(created.value().Seal().ok());
    dir_ = TestDir("qcorrupt");
    Result<ShardStore> q =
        ShardStore::Quantize(&created.value(), dir_, ShardDtype::kInt8);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
  }

  static std::string ReadAll(const std::string& path) {
    std::string out;
    const Status st = io::ReadFile(path, &out);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  static void WriteAll(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    ASSERT_TRUE(out.good());
  }

  std::string manifest() const { return dir_ + "/manifest"; }
  std::string slab(int i) const {
    return dir_ + "/slab_" + std::to_string(i) + ".bin";
  }

  std::string dir_;
};

TEST_F(QuantShardCorruptionTest, EveryManifestByteFlipIsDetected) {
  const std::string pristine = ReadAll(manifest());
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string bad = pristine;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    WriteAll(manifest(), bad);
    EXPECT_FALSE(ShardStore::Open(dir_).ok())
        << "flip at v2 manifest byte " << i;
  }
  WriteAll(manifest(), pristine);
  EXPECT_TRUE(ShardStore::Open(dir_).ok());
}

TEST_F(QuantShardCorruptionTest, ManifestTruncationAndTrailingDetected) {
  const std::string pristine = ReadAll(manifest());
  for (size_t len = 0; len < pristine.size(); len += 3) {
    WriteAll(manifest(), pristine.substr(0, len));
    EXPECT_FALSE(ShardStore::Open(dir_).ok()) << "truncated to " << len;
  }
  WriteAll(manifest(), pristine + "x");
  Result<ShardStore> trailing = ShardStore::Open(dir_);
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), Status::Code::kCorruption);
}

TEST_F(QuantShardCorruptionTest, SlabFlipsDetectedInRowsPadAndScales) {
  // Slab 0 holds 4 rows x 3 cols int8 (12 bytes), zero-pad to 64, then
  // 4 fp32 scales: flip one byte in each region.
  const std::string pristine = ReadAll(slab(0));
  ASSERT_EQ(pristine.size(), 64u + 16u);
  for (const size_t at : {size_t{5}, size_t{30}, size_t{66}}) {
    std::string bad = pristine;
    bad[at] = static_cast<char>(bad[at] ^ 0x01);
    WriteAll(slab(0), bad);
    Result<ShardStore> opened = ShardStore::Open(dir_);
    ASSERT_FALSE(opened.ok()) << "flip at slab byte " << at;
    EXPECT_EQ(opened.status().code(), Status::Code::kCorruption);
  }
  WriteAll(slab(0), pristine);
  EXPECT_TRUE(ShardStore::Open(dir_).ok());
}

TEST_F(QuantShardCorruptionTest, SlabTruncationAndTrailingDetected) {
  const std::string pristine = ReadAll(slab(1));
  WriteAll(slab(1), pristine.substr(0, pristine.size() - 4));
  Result<ShardStore> truncated = ShardStore::Open(dir_);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), Status::Code::kCorruption);
  WriteAll(slab(1), pristine + std::string(4, '\0'));
  Result<ShardStore> trailing = ShardStore::Open(dir_);
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), Status::Code::kCorruption);
}

TEST_F(QuantShardCorruptionTest, ManifestDtypeByteFlipIsDetected) {
  // Flipping the dtype byte alone (byte right after the u64 version in
  // the framed payload) must fail the manifest CRC — a store can never
  // silently change encoding.
  const std::string pristine = ReadAll(manifest());
  bool found_int8_byte = false;
  for (size_t i = 0; i < pristine.size(); ++i) {
    if (pristine[i] != 0x01) continue;
    found_int8_byte = true;
    std::string bad = pristine;
    bad[i] = 0x02;  // int8 -> bf16
    WriteAll(manifest(), bad);
    EXPECT_FALSE(ShardStore::Open(dir_).ok()) << "dtype swap at byte " << i;
  }
  ASSERT_TRUE(found_int8_byte);
  WriteAll(manifest(), pristine);
  EXPECT_TRUE(ShardStore::Open(dir_).ok());
}

}  // namespace
}  // namespace came::tensor
