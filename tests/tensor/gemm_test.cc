#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/parallel_for.h"
#include "common/random.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace came::tensor::gemm {
namespace {

// Tolerance policy (documented in DESIGN.md "GEMM subsystem"): the blocked
// kernel accumulates each output in KC-sized register-tiled partial sums
// while the reference accumulates in straight k-order, so results differ
// by reordered float rounding. For unit-variance operands the per-element
// error of either order is O(eps * k) in the worst case, so parity is
// checked against an absolute budget linear in k (the sqrt(k) growth of
// |c| itself keeps the relative error well below this).
float ParityTolerance(int64_t k) {
  return 4e-6f * static_cast<float>(k) + 1e-5f;
}

void FillNormal(std::vector<float>* v, Rng* rng) {
  for (float& x : *v) x = static_cast<float>(rng->Normal());
}

// Runs new-vs-reference parity on one (m, k, n) for all four transpose
// combinations with accumulate off and on.
void CheckShape(int64_t m, int64_t k, int64_t n, Rng* rng) {
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> seed(static_cast<size_t>(m * n));
  FillNormal(&a, rng);
  FillNormal(&b, rng);
  FillNormal(&seed, rng);
  const float tol = ParityTolerance(k);
  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      for (const bool accumulate : {false, true}) {
        std::vector<float> ref = seed;
        std::vector<float> got = seed;
        ReferenceGemm(a.data(), b.data(), ref.data(), m, k, n, trans_a,
                      trans_b, accumulate);
        Gemm(a.data(), b.data(), got.data(), m, k, n, trans_a, trans_b,
             accumulate);
        for (int64_t i = 0; i < m * n; ++i) {
          ASSERT_NEAR(got[static_cast<size_t>(i)], ref[static_cast<size_t>(i)],
                      tol)
              << "m=" << m << " k=" << k << " n=" << n << " ta=" << trans_a
              << " tb=" << trans_b << " acc=" << accumulate << " i=" << i
              << " kernel=" << KernelName(ActiveKernel());
        }
      }
    }
  }
}

void CheckGrid(const std::vector<int64_t>& sizes, uint64_t rng_seed) {
  Rng rng(rng_seed);
  for (const int64_t m : sizes) {
    for (const int64_t k : sizes) {
      for (const int64_t n : sizes) CheckShape(m, k, n, &rng);
    }
  }
}

// Restores the auto-selected kernel and the ambient pool size when a test
// exits, however it exits.
class KernelAndThreadGuard {
 public:
  KernelAndThreadGuard() : threads_(NumThreads()) {}
  ~KernelAndThreadGuard() {
    SetKernel(Kernel::kAuto);
    SetNumThreads(threads_);
  }

 private:
  int threads_;
};

TEST(GemmParityTest, AdversarialGridOnActiveKernel) {
  // Full m/k/n cross product over sizes that hit every edge case: single
  // rows/columns, sub-tile shapes, exact-tile multiples, off-by-one above
  // a register tile, and multi-block 512.
  CheckGrid({1, 3, 7, 64, 129, 512}, /*rng_seed=*/42);
}

TEST(GemmParityTest, EveryAvailableKernel) {
  KernelAndThreadGuard guard;
  for (const Kernel k : {Kernel::kScalar, Kernel::kAvx2, Kernel::kAvx512}) {
    SetKernel(k);
    if (ActiveKernel() != k) continue;  // not available on this CPU/binary
    SCOPED_TRACE("kernel=" + KernelName(k));
    CheckGrid({1, 7, 129}, /*rng_seed=*/7);
    CheckShape(512, 512, 512, [] {
      static Rng rng(11);
      return &rng;
    }());
  }
}

TEST(GemmDeterminismTest, BitwiseIdenticalAcrossThreadCounts) {
  KernelAndThreadGuard guard;
  // Shapes chosen to split into several kMC row blocks (so the pool is
  // actually exercised) with ragged edges in every dimension.
  const std::vector<std::array<int64_t, 3>> shapes = {
      {512, 512, 512}, {300, 257, 301}, {97, 130, 1000}};
  Rng rng(5);
  for (const auto& [m, k, n] : shapes) {
    std::vector<float> a(static_cast<size_t>(m * k));
    std::vector<float> b(static_cast<size_t>(k * n));
    FillNormal(&a, &rng);
    FillNormal(&b, &rng);
    for (const bool trans_a : {false, true}) {
      for (const bool trans_b : {false, true}) {
        SetNumThreads(1);
        std::vector<float> golden(static_cast<size_t>(m * n));
        Gemm(a.data(), b.data(), golden.data(), m, k, n, trans_a, trans_b,
             /*accumulate=*/false);
        for (const int threads : {2, 4, 8}) {
          SetNumThreads(threads);
          std::vector<float> got(static_cast<size_t>(m * n));
          Gemm(a.data(), b.data(), got.data(), m, k, n, trans_a, trans_b,
               /*accumulate=*/false);
          ASSERT_EQ(std::memcmp(golden.data(), got.data(),
                                golden.size() * sizeof(float)),
                    0)
              << "m=" << m << " k=" << k << " n=" << n << " ta=" << trans_a
              << " tb=" << trans_b << " threads=" << threads;
        }
      }
    }
  }
}

TEST(GemmDeterminismTest, TensorMatMulIdenticalAcrossThreadCounts) {
  // End-to-end through the tensor API, including the batched path.
  KernelAndThreadGuard guard;
  Rng rng(9);
  Tensor a({129, 257});
  Tensor b({257, 303});
  Tensor ba({5, 64, 96});
  Tensor bb({5, 96, 64});
  for (Tensor* t : {&a, &b, &ba, &bb}) {
    for (int64_t i = 0; i < t->numel(); ++i) {
      t->data()[i] = static_cast<float>(rng.Normal());
    }
  }
  SetNumThreads(1);
  Tensor mm1 = MatMul(a, b);
  Tensor bmm1 = BatchMatMul(ba, bb);
  for (const int threads : {2, 4, 8}) {
    SetNumThreads(threads);
    Tensor mmt = MatMul(a, b);
    Tensor bmmt = BatchMatMul(ba, bb);
    EXPECT_EQ(std::memcmp(mm1.data(), mmt.data(),
                          static_cast<size_t>(mm1.numel()) * sizeof(float)),
              0)
        << "MatMul differs at threads=" << threads;
    EXPECT_EQ(std::memcmp(bmm1.data(), bmmt.data(),
                          static_cast<size_t>(bmm1.numel()) * sizeof(float)),
              0)
        << "BatchMatMul differs at threads=" << threads;
  }
}

TEST(GemmKernelTest, SetKernelFallsBackWhenUnavailable) {
  KernelAndThreadGuard guard;
  // Scalar is always available; selecting it must stick.
  SetKernel(Kernel::kScalar);
  EXPECT_EQ(ActiveKernel(), Kernel::kScalar);
  // Auto never resolves to kAuto itself.
  SetKernel(Kernel::kAuto);
  EXPECT_NE(ActiveKernel(), Kernel::kAuto);
}

TEST(GemmKernelTest, KernelNamesRoundTrip) {
  EXPECT_EQ(KernelName(Kernel::kAuto), "auto");
  EXPECT_EQ(KernelName(Kernel::kScalar), "scalar");
  EXPECT_EQ(KernelName(Kernel::kAvx2), "avx2");
  EXPECT_EQ(KernelName(Kernel::kAvx512), "avx512");
}

TEST(GemmEdgeTest, DegenerateDimensions) {
  // k == 0 must zero (accumulate=false) or preserve (accumulate=true) C.
  std::vector<float> a;
  std::vector<float> b;
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  Gemm(a.data(), b.data(), c.data(), 2, 0, 2, false, false,
       /*accumulate=*/true);
  EXPECT_EQ(c, (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}));
  Gemm(a.data(), b.data(), c.data(), 2, 0, 2, false, false,
       /*accumulate=*/false);
  EXPECT_EQ(c, (std::vector<float>{0.0f, 0.0f, 0.0f, 0.0f}));
}

}  // namespace
}  // namespace came::tensor::gemm
