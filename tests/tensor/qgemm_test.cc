// Property tests for the int8/bf16 quantized scoring kernels. Two
// contracts are pinned here: quantization error is bounded per element
// (|x - deq(q(x))| <= scale/2, scale = max|row|/127), and the int8 GEMM
// is *bitwise deterministic* — every dispatched kernel at every thread
// count reproduces the serial scalar reference exactly, because the dot
// is exact int32 arithmetic under one shared scaling expression.
#include "tensor/qgemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/parallel_for.h"
#include "common/random.h"

namespace came::tensor::qgemm {
namespace {

std::vector<float> RandomRows(Rng* rng, int64_t rows, int64_t dim,
                              double scale) {
  std::vector<float> v(static_cast<size_t>(rows * dim));
  for (float& x : v) x = static_cast<float>(rng->Normal() * scale);
  return v;
}

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(NumThreads()) {}
  ~ThreadCountGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

class KernelGuard {
 public:
  KernelGuard() : saved_(ActiveKernel()) {}
  ~KernelGuard() { SetKernel(saved_); }

 private:
  Kernel saved_;
};

TEST(QuantizeInt8, RoundTripErrorBoundedByHalfScale) {
  Rng rng(0xC0DE);
  for (const double spread : {1e-3, 1.0, 1e4}) {
    const int64_t rows = 17;
    const int64_t dim = 33;
    const std::vector<float> src = RandomRows(&rng, rows, dim, spread);
    std::vector<int8_t> q(src.size());
    std::vector<float> scales(static_cast<size_t>(rows));
    ASSERT_TRUE(
        QuantizeRowsInt8(src.data(), rows, dim, q.data(), scales.data()).ok());
    for (int64_t i = 0; i < rows; ++i) {
      const float scale = scales[static_cast<size_t>(i)];
      ASSERT_GT(scale, 0.0f);
      float maxabs = 0.0f;
      for (int64_t j = 0; j < dim; ++j) {
        maxabs = std::max(maxabs,
                          std::fabs(src[static_cast<size_t>(i * dim + j)]));
      }
      EXPECT_FLOAT_EQ(scale, maxabs / 127.0f);
      for (int64_t j = 0; j < dim; ++j) {
        const float x = src[static_cast<size_t>(i * dim + j)];
        const int8_t qv = q[static_cast<size_t>(i * dim + j)];
        EXPECT_GE(qv, -127);
        EXPECT_LE(qv, 127);
        // Round-to-nearest gives a half-scale bound; the tiny slack
        // covers the 1-ulp difference between multiplying by 127/max
        // and dividing by max/127.
        EXPECT_LE(std::fabs(x - DequantizeInt8(qv, scale)),
                  scale * 0.500001f)
            << "row " << i << " col " << j;
      }
    }
  }
}

TEST(QuantizeInt8, AllZeroRowGetsZeroScaleAndExactZeros) {
  const int64_t dim = 9;
  std::vector<float> src(static_cast<size_t>(2 * dim), 0.0f);
  src[static_cast<size_t>(dim)] = 3.0f;  // second row non-zero
  std::vector<int8_t> q(src.size(), 42);
  std::vector<float> scales(2, -1.0f);
  ASSERT_TRUE(QuantizeRowsInt8(src.data(), 2, dim, q.data(), scales.data())
                  .ok());
  EXPECT_EQ(scales[0], 0.0f);
  for (int64_t j = 0; j < dim; ++j) {
    EXPECT_EQ(q[static_cast<size_t>(j)], 0);
    EXPECT_EQ(DequantizeInt8(q[static_cast<size_t>(j)], scales[0]), 0.0f);
  }
  EXPECT_GT(scales[1], 0.0f);
  EXPECT_EQ(q[static_cast<size_t>(dim)], 127);  // the max element maps to 127
}

TEST(QuantizeInt8, SingleRowSingleColumn) {
  const float x = -2.5f;
  int8_t q = 0;
  float scale = 0.0f;
  ASSERT_TRUE(QuantizeRowsInt8(&x, 1, 1, &q, &scale).ok());
  EXPECT_EQ(q, -127);
  EXPECT_FLOAT_EQ(DequantizeInt8(q, scale), x);
}

TEST(QuantizeInt8, NanAndInfRowsRejectedWithRowInMessage) {
  const int64_t dim = 4;
  for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity()}) {
    std::vector<float> src(static_cast<size_t>(3 * dim), 1.0f);
    src[static_cast<size_t>(2 * dim + 1)] = bad;
    std::vector<int8_t> q(src.size());
    std::vector<float> scales(3);
    const Status st =
        QuantizeRowsInt8(src.data(), 3, dim, q.data(), scales.data());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
    EXPECT_NE(st.message().find("row 2"), std::string::npos) << st.ToString();
  }
}

TEST(QuantizeInt8, ServingVariantDegradesNonFiniteRowsToNanScale) {
  const int64_t dim = 3;
  std::vector<float> src = {1.0f, 2.0f, 3.0f,  // finite row
                            0.5f, std::numeric_limits<float>::quiet_NaN(),
                            1.0f};
  std::vector<int8_t> q(src.size(), 42);
  std::vector<float> scales(2);
  QuantizeRowsInt8Serving(src.data(), 2, dim, q.data(), scales.data());
  EXPECT_GT(scales[0], 0.0f);
  EXPECT_TRUE(std::isnan(scales[1]));
  for (int64_t j = 0; j < dim; ++j) {
    EXPECT_EQ(q[static_cast<size_t>(dim + j)], 0);
  }
  // A NaN scale poisons every score the row produces: float(acc) * NaN.
  EXPECT_TRUE(std::isnan(DequantizeInt8(q[static_cast<size_t>(dim)],
                                        scales[1])));
}

TEST(QuantizeInt8, TwoDigitResidualShrinksErrorByTwoOrdersOfMagnitude) {
  Rng rng(0x2D161);
  const int64_t rows = 9;
  const int64_t dim = 41;
  const std::vector<float> src = RandomRows(&rng, rows, dim, 3.0);
  std::vector<int8_t> hi(src.size());
  std::vector<int8_t> lo(src.size());
  std::vector<float> hs(static_cast<size_t>(rows));
  std::vector<float> ls(static_cast<size_t>(rows));
  QuantizeRowsInt8ServingTwoDigit(src.data(), rows, dim, hi.data(), hs.data(),
                                  lo.data(), ls.data());
  for (int64_t i = 0; i < rows; ++i) {
    // The residual's magnitude is at most hi_scale / 2 (+1 ulp), so its
    // own scale is at least ~254x finer than the hi digit's.
    ASSERT_GT(hs[static_cast<size_t>(i)], 0.0f);
    EXPECT_LE(ls[static_cast<size_t>(i)],
              hs[static_cast<size_t>(i)] * 0.5f * (1.0f / 127.0f) * 1.001f);
    for (int64_t j = 0; j < dim; ++j) {
      const size_t at = static_cast<size_t>(i * dim + j);
      const float recon =
          DequantizeInt8(hi[at], hs[static_cast<size_t>(i)]) +
          DequantizeInt8(lo[at], ls[static_cast<size_t>(i)]);
      // Two-digit round trip: error bounded by half the *lo* step.
      EXPECT_LE(std::fabs(src[at] - recon),
                ls[static_cast<size_t>(i)] * 0.500001f +
                    std::fabs(src[at]) * 1e-6f)
          << "row " << i << " col " << j;
    }
  }
}

TEST(QuantizeInt8, TwoDigitNonFiniteRowPoisonsBothDigits) {
  const int64_t dim = 3;
  std::vector<float> src = {1.0f, std::numeric_limits<float>::infinity(),
                            2.0f};
  std::vector<int8_t> hi(3, 42);
  std::vector<int8_t> lo(3, 42);
  float hs = 0.0f;
  float ls = 0.0f;
  QuantizeRowsInt8ServingTwoDigit(src.data(), 1, dim, hi.data(), &hs,
                                  lo.data(), &ls);
  EXPECT_TRUE(std::isnan(hs));
  EXPECT_TRUE(std::isnan(ls));
  for (int64_t j = 0; j < dim; ++j) {
    EXPECT_EQ(hi[static_cast<size_t>(j)], 0);
    EXPECT_EQ(lo[static_cast<size_t>(j)], 0);
  }
}

TEST(Bf16, EncodeDecodeRoundsToNearestEven) {
  // 1.0f is exactly representable; decode must return it bitwise.
  EXPECT_EQ(Bf16ToFp32(Fp32ToBf16(1.0f)), 1.0f);
  EXPECT_EQ(Bf16ToFp32(Fp32ToBf16(-0.0f)), -0.0f);
  // Relative rounding error of bf16 (8 mantissa bits) is <= 2^-8.
  Rng rng(0xBF16);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.Normal() * 100.0);
    const float back = Bf16ToFp32(Fp32ToBf16(x));
    EXPECT_LE(std::fabs(back - x), std::fabs(x) * (1.0f / 256.0f) + 1e-30f);
  }
  // Round-to-nearest-even on the dropped half: 1 + 2^-9 sits exactly
  // between bf16(1.0) and bf16(1 + 2^-8) and must round to the even
  // neighbour, 1.0.
  EXPECT_EQ(Bf16ToFp32(Fp32ToBf16(1.0f + 0.001953125f)), 1.0f);
}

TEST(Bf16, NanSurvivesEncodingAsNan) {
  const uint16_t enc = Fp32ToBf16(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(Bf16ToFp32(enc)));
}

TEST(Bf16, EncodeRowsRejectsNonFinite) {
  std::vector<float> src = {1.0f, std::numeric_limits<float>::infinity()};
  std::vector<uint16_t> out(2);
  const Status st = EncodeRowsBf16(src.data(), 1, 2, out.data());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("row 0"), std::string::npos);
}

TEST(Bf16, DecodeIsExactWidening) {
  std::vector<uint16_t> enc;
  for (uint32_t v = 0; v < 0x8000u; v += 97) {
    // Skip NaN bit patterns: re-encoding a decoded NaN forces the quiet
    // bit, which is the one sanctioned non-identity.
    if ((v & 0x7F80u) == 0x7F80u && (v & 0x007Fu) != 0) continue;
    enc.push_back(static_cast<uint16_t>(v));
  }
  std::vector<float> dec(enc.size());
  DecodeBf16(enc.data(), static_cast<int64_t>(enc.size()), dec.data());
  for (size_t i = 0; i < enc.size(); ++i) {
    // Re-encoding a decoded bf16 value must be lossless.
    EXPECT_EQ(Fp32ToBf16(dec[i]), enc[i]);
  }
}

// The headline determinism property: for a seeded grid of shapes, every
// available kernel at 1 and 4 threads is bitwise identical to the serial
// scalar reference. Shapes straddle the SIMD width (32) and the parallel
// column block (64) so vector bodies, scalar tails, and multi-block
// partitions are all exercised.
TEST(GemmInt8, ParityGridAcrossKernelsAndThreads) {
  ThreadCountGuard restore_threads;
  KernelGuard restore_kernel;
  Rng rng(0x517);
  const std::vector<Kernel> kernels = {Kernel::kScalar, Kernel::kAvx2,
                                       Kernel::kVnni};
  for (const int64_t m : {1, 3, 8}) {
    for (const int64_t k : {1, 31, 32, 33, 96}) {
      for (const int64_t n : {1, 63, 64, 65, 200}) {
        const std::vector<float> af = RandomRows(&rng, m, k, 2.0);
        const std::vector<float> bf = RandomRows(&rng, n, k, 2.0);
        std::vector<int8_t> a(af.size());
        std::vector<int8_t> b(bf.size());
        std::vector<float> a_scales(static_cast<size_t>(m));
        std::vector<float> b_scales(static_cast<size_t>(n));
        ASSERT_TRUE(QuantizeRowsInt8(af.data(), m, k, a.data(),
                                     a_scales.data())
                        .ok());
        ASSERT_TRUE(QuantizeRowsInt8(bf.data(), n, k, b.data(),
                                     b_scales.data())
                        .ok());

        std::vector<float> want(static_cast<size_t>(m * n));
        ReferenceGemmInt8(a.data(), a_scales.data(), b.data(),
                          b_scales.data(), want.data(), m, k, n);

        for (const Kernel kernel : kernels) {
          if (!KernelAvailable(kernel)) continue;
          SetKernel(kernel);
          ASSERT_EQ(ActiveKernel(), kernel);
          for (const int threads : {1, 4}) {
            SetNumThreads(threads);
            std::vector<float> got(want.size(), -123.0f);
            GemmInt8(a.data(), a_scales.data(), b.data(), b_scales.data(),
                     got.data(), m, k, n);
            ASSERT_EQ(std::memcmp(got.data(), want.data(),
                                  want.size() * sizeof(float)),
                      0)
                << "kernel=" << KernelName(kernel) << " threads=" << threads
                << " m=" << m << " k=" << k << " n=" << n;
          }
        }
      }
    }
  }
}

// Same determinism contract for the two-digit query GEMM the ScoreServer
// int8 sweep actually runs.
TEST(GemmInt8, TwoDigitParityAcrossKernelsAndThreads) {
  ThreadCountGuard restore_threads;
  KernelGuard restore_kernel;
  Rng rng(0x2D162);
  for (const int64_t m : {1, 5}) {
    for (const int64_t k : {7, 32, 96}) {
      for (const int64_t n : {1, 64, 131}) {
        const std::vector<float> af = RandomRows(&rng, m, k, 2.0);
        const std::vector<float> bf = RandomRows(&rng, n, k, 2.0);
        std::vector<int8_t> hi(af.size());
        std::vector<int8_t> lo(af.size());
        std::vector<float> hs(static_cast<size_t>(m));
        std::vector<float> ls(static_cast<size_t>(m));
        QuantizeRowsInt8ServingTwoDigit(af.data(), m, k, hi.data(), hs.data(),
                                        lo.data(), ls.data());
        std::vector<int8_t> b(bf.size());
        std::vector<float> b_scales(static_cast<size_t>(n));
        ASSERT_TRUE(QuantizeRowsInt8(bf.data(), n, k, b.data(),
                                     b_scales.data())
                        .ok());

        std::vector<float> want(static_cast<size_t>(m * n));
        ReferenceGemmInt8TwoDigit(hi.data(), hs.data(), lo.data(), ls.data(),
                                  b.data(), b_scales.data(), want.data(), m,
                                  k, n);
        for (const Kernel kernel :
             {Kernel::kScalar, Kernel::kAvx2, Kernel::kVnni}) {
          if (!KernelAvailable(kernel)) continue;
          SetKernel(kernel);
          for (const int threads : {1, 4}) {
            SetNumThreads(threads);
            std::vector<float> got(want.size(), -123.0f);
            GemmInt8TwoDigit(hi.data(), hs.data(), lo.data(), ls.data(),
                             b.data(), b_scales.data(), got.data(), m, k, n);
            ASSERT_EQ(std::memcmp(got.data(), want.data(),
                                  want.size() * sizeof(float)),
                      0)
                << "kernel=" << KernelName(kernel) << " threads=" << threads
                << " m=" << m << " k=" << k << " n=" << n;
          }
        }
      }
    }
  }
}

TEST(GemmInt8, ReferenceMatchesPlainIntegerArithmetic) {
  // Tiny hand-checkable case: a = [1, -2], b = [[3, 4], [-5, 6]],
  // scales 0.5 / 0.25 and 2.0 / 4.0.
  const int8_t a[] = {1, -2};
  const int8_t b[] = {3, 4, -5, 6};
  const float a_scales[] = {0.5f};
  const float b_scales[] = {2.0f, 4.0f};
  float c[2] = {0.0f, 0.0f};
  ReferenceGemmInt8(a, a_scales, b, b_scales, c, 1, 2, 2);
  EXPECT_EQ(c[0], static_cast<float>(1 * 3 + (-2) * 4) * (0.5f * 2.0f));
  EXPECT_EQ(c[1], static_cast<float>(1 * (-5) + (-2) * 6) * (0.5f * 4.0f));
}

TEST(GemmInt8, NanAScalePoisonsExactlyThatRow) {
  const int8_t a[] = {1, 1};   // two query rows, k = 1
  const int8_t b[] = {5, 7};   // two candidates
  const float a_scales[] = {std::numeric_limits<float>::quiet_NaN(), 1.0f};
  const float b_scales[] = {1.0f, 1.0f};
  float c[4];
  GemmInt8(a, a_scales, b, b_scales, c, 2, 1, 2);
  EXPECT_TRUE(std::isnan(c[0]));
  EXPECT_TRUE(std::isnan(c[1]));
  EXPECT_EQ(c[2], 5.0f);
  EXPECT_EQ(c[3], 7.0f);
}

TEST(GemmInt8, SaturationBoundaryAccumulatesExactly) {
  // 96 pairs of (+-127 * 127): each AVX2 vpmaddubsw pair sum is
  // 2 * 127 * 127 = 32258 < int16 max, and the int32 accumulator carries
  // the full sum. Any saturating kernel would diverge from the scalar
  // reference here.
  KernelGuard restore_kernel;
  const int64_t k = 96;
  std::vector<int8_t> a(static_cast<size_t>(k), 127);
  std::vector<int8_t> b(static_cast<size_t>(k));
  for (int64_t p = 0; p < k; ++p) {
    b[static_cast<size_t>(p)] = (p % 2 == 0) ? 127 : -127;
  }
  const float one = 1.0f;
  for (const Kernel kernel : {Kernel::kScalar, Kernel::kAvx2, Kernel::kVnni}) {
    if (!KernelAvailable(kernel)) continue;
    SetKernel(kernel);
    float c = -1.0f;
    GemmInt8(a.data(), &one, b.data(), &one, &c, 1, k, 1);
    EXPECT_EQ(c, 0.0f) << KernelName(kernel);  // pairs cancel exactly
  }
  // All-same-sign: the worst-case magnitude 96 * 127 * 127 = 1548384.
  for (int64_t p = 0; p < k; ++p) b[static_cast<size_t>(p)] = 127;
  for (const Kernel kernel : {Kernel::kScalar, Kernel::kAvx2, Kernel::kVnni}) {
    if (!KernelAvailable(kernel)) continue;
    SetKernel(kernel);
    float c = 0.0f;
    GemmInt8(a.data(), &one, b.data(), &one, &c, 1, k, 1);
    EXPECT_EQ(c, 1548384.0f) << KernelName(kernel);
  }
}

TEST(QgemmKernels, NamesAndAvailability) {
  EXPECT_EQ(KernelName(Kernel::kAuto), "auto");
  EXPECT_EQ(KernelName(Kernel::kScalar), "scalar");
  EXPECT_EQ(KernelName(Kernel::kAvx2), "avx2");
  EXPECT_EQ(KernelName(Kernel::kVnni), "vnni");
  EXPECT_TRUE(KernelAvailable(Kernel::kScalar));
  EXPECT_FALSE(KernelAvailable(Kernel::kAuto));
  KernelGuard restore;
  SetKernel(Kernel::kScalar);
  EXPECT_EQ(ActiveKernel(), Kernel::kScalar);
  SetKernel(Kernel::kAuto);  // restores cpuid-based selection
  EXPECT_NE(ActiveKernel(), Kernel::kAuto);
}

}  // namespace
}  // namespace came::tensor::qgemm
