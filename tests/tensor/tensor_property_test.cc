// Property-based tests over the tensor kernels: algebraic identities that
// must hold for arbitrary shapes and random contents. Parameterised over
// seeds so each run sweeps several random landscapes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "tensor/tensor_ops.h"

namespace came::tensor {
namespace {

Tensor RandomTensor(Shape shape, Rng* rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Normal() * scale);
  }
  return t;
}

void ExpectNear(const Tensor& a, const Tensor& b, double tol,
                const char* what) {
  ASSERT_TRUE(SameShape(a.shape(), b.shape())) << what;
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], tol) << what << " @" << i;
  }
}

class TensorAlgebraTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam() * 7919 + 1};
};

TEST_P(TensorAlgebraTest, AdditionCommutesAndAssociates) {
  Tensor a = RandomTensor({3, 5}, &rng_);
  Tensor b = RandomTensor({3, 5}, &rng_);
  Tensor c = RandomTensor({5}, &rng_);  // broadcast operand
  ExpectNear(Add(a, b), Add(b, a), 1e-6, "commutativity");
  ExpectNear(Add(Add(a, b), c), Add(a, Add(b, c)), 1e-5, "associativity");
}

TEST_P(TensorAlgebraTest, MulDistributesOverAdd) {
  Tensor a = RandomTensor({4, 3}, &rng_);
  Tensor b = RandomTensor({4, 3}, &rng_);
  Tensor c = RandomTensor({4, 1}, &rng_);  // broadcast
  ExpectNear(Mul(c, Add(a, b)), Add(Mul(c, a), Mul(c, b)), 1e-4,
             "distributivity");
}

TEST_P(TensorAlgebraTest, MatMulLinearInFirstArgument) {
  Tensor a1 = RandomTensor({3, 4}, &rng_);
  Tensor a2 = RandomTensor({3, 4}, &rng_);
  Tensor b = RandomTensor({4, 2}, &rng_);
  ExpectNear(MatMul(Add(a1, a2), b), Add(MatMul(a1, b), MatMul(a2, b)),
             1e-4, "matmul linearity");
}

TEST_P(TensorAlgebraTest, MatMulAgreesWithTransposedForm) {
  // (A B)^T == B^T A^T.
  Tensor a = RandomTensor({3, 4}, &rng_);
  Tensor b = RandomTensor({4, 2}, &rng_);
  ExpectNear(Transpose2D(MatMul(a, b)),
             MatMul(Transpose2D(b), Transpose2D(a)), 1e-4,
             "transpose identity");
}

TEST_P(TensorAlgebraTest, SoftmaxInvariantToRowShift) {
  Tensor a = RandomTensor({4, 6}, &rng_);
  Tensor shifted = AddScalar(a, 37.5f);
  ExpectNear(SoftmaxAlong(a, 1), SoftmaxAlong(shifted, 1), 1e-5,
             "shift invariance");
}

TEST_P(TensorAlgebraTest, SoftmaxOutputsAreADistribution) {
  Tensor a = RandomTensor({2, 5, 3}, &rng_, 3.0);
  for (int64_t dim : {0, 1, 2}) {
    Tensor s = SoftmaxAlong(a, dim);
    for (int64_t i = 0; i < s.numel(); ++i) {
      EXPECT_GE(s.data()[i], 0.0f);
      EXPECT_LE(s.data()[i], 1.0f);
    }
    Tensor sums = SumAlong(s, dim, false);
    for (int64_t i = 0; i < sums.numel(); ++i) {
      EXPECT_NEAR(sums.data()[i], 1.0f, 1e-5);
    }
  }
}

TEST_P(TensorAlgebraTest, ConcatThenSliceRecoversParts) {
  Tensor a = RandomTensor({2, 3}, &rng_);
  Tensor b = RandomTensor({2, 4}, &rng_);
  Tensor c = Concat({a, b}, 1);
  ExpectNear(SliceAlong(c, 1, 0, 3), a, 0.0, "left part");
  ExpectNear(SliceAlong(c, 1, 3, 4), b, 0.0, "right part");
}

TEST_P(TensorAlgebraTest, SumAlongPartitionsSumAll) {
  Tensor a = RandomTensor({3, 4, 2}, &rng_);
  for (int64_t dim : {0, 1, 2}) {
    EXPECT_NEAR(SumAllScalar(SumAlong(a, dim, false)), SumAllScalar(a),
                1e-3);
  }
}

TEST_P(TensorAlgebraTest, ReduceToShapeMatchesManualSums) {
  Tensor g = RandomTensor({3, 4}, &rng_);
  Tensor reduced = ReduceToShape(g, {4});
  for (int64_t j = 0; j < 4; ++j) {
    float manual = 0;
    for (int64_t i = 0; i < 3; ++i) manual += g.at({i, j});
    EXPECT_NEAR(reduced.data()[j], manual, 1e-5);
  }
}

TEST_P(TensorAlgebraTest, BatchMatMulMatchesBlockDiagonalView) {
  Tensor a = RandomTensor({2, 3, 4}, &rng_);
  Tensor b = RandomTensor({2, 4, 5}, &rng_);
  Tensor c = BatchMatMul(a, b);
  for (int64_t bi = 0; bi < 2; ++bi) {
    Tensor as = SliceAlong(a, 0, bi, 1).Reshape({3, 4});
    Tensor bs = SliceAlong(b, 0, bi, 1).Reshape({4, 5});
    ExpectNear(SliceAlong(c, 0, bi, 1).Reshape({3, 5}), MatMul(as, bs),
               1e-4, "batch slice");
  }
}

TEST_P(TensorAlgebraTest, SigmoidTanhIdentity) {
  // tanh(x) == 2*sigmoid(2x) - 1.
  Tensor x = RandomTensor({4, 4}, &rng_);
  Tensor lhs = Tanh(x);
  Tensor rhs = AddScalar(Scale(Sigmoid(Scale(x, 2.0f)), 2.0f), -1.0f);
  ExpectNear(lhs, rhs, 1e-5, "tanh/sigmoid identity");
}

TEST_P(TensorAlgebraTest, GatherOfArangeIsIdentityPermutation) {
  Tensor m = RandomTensor({6, 3}, &rng_);
  std::vector<int64_t> all = {0, 1, 2, 3, 4, 5};
  rng_.Shuffle(&all);
  Tensor g = GatherRows(m, all);
  for (size_t i = 0; i < all.size(); ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(g.at({static_cast<int64_t>(i), j}), m.at({all[i], j}));
    }
  }
}

TEST_P(TensorAlgebraTest, Im2ColPreservesMassUnderOnesKernel) {
  // Convolving with an all-ones 1x1 kernel equals the input itself.
  Tensor x = RandomTensor({2, 3, 4, 5}, &rng_);
  Tensor cols = Im2Col(x, 1, 1, 0);
  EXPECT_NEAR(SumAllScalar(cols), SumAllScalar(x), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorAlgebraTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace came::tensor
