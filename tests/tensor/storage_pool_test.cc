#include "tensor/storage_pool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape_audit.h"
#include "tensor/tensor.h"

namespace came::tensor::pool {
namespace {

// Pins the pool mode for one test and restores the previous mode (and a
// clean pool) on exit, so tests compose in any order.
class ModeGuard {
 public:
  explicit ModeGuard(Mode mode) : saved_(ActiveMode()) {
    Clear();
    SetMode(mode);
  }
  ~ModeGuard() {
    Clear();
    SetMode(saved_);
  }

 private:
  Mode saved_;
};

TEST(StoragePoolTest, SizeClassRounding) {
  // Classes are 2^k and 3*2^(k-1), starting at 64 floats.
  EXPECT_EQ(ClassCapacity(1), 64);
  EXPECT_EQ(ClassCapacity(64), 64);
  EXPECT_EQ(ClassCapacity(65), 96);
  EXPECT_EQ(ClassCapacity(96), 96);
  EXPECT_EQ(ClassCapacity(97), 128);
  EXPECT_EQ(ClassCapacity(128), 128);
  EXPECT_EQ(ClassCapacity(129), 192);
  EXPECT_EQ(ClassCapacity(1000), 1024);
  EXPECT_EQ(ClassCapacity(1025), 1536);
  // Internal fragmentation never exceeds 50% (worst case just above 3/4
  // of a power of two is bounded by the 4/3 class ratio).
  for (int64_t n : {100, 500, 7777, 123456, 9999999}) {
    EXPECT_GE(ClassCapacity(n), n);
    EXPECT_LE(ClassCapacity(n), n * 2);
  }
}

TEST(StoragePoolTest, RecyclesSameBufferWithinThread) {
  ModeGuard guard(Mode::kOn);
  float* first;
  {
    StorageHandle h = Acquire(100, /*zero=*/false);
    first = h.get();
  }
  // Same size class -> the freed buffer is the next one handed out.
  StorageHandle h2 = Acquire(128, /*zero=*/false);
  EXPECT_EQ(h2.get(), first);
}

TEST(StoragePoolTest, ZeroAcquireIsZeroEvenWhenRecycled) {
  ModeGuard guard(Mode::kOn);
  {
    StorageHandle dirty = Acquire(64, /*zero=*/false);
    for (int i = 0; i < 64; ++i) dirty.get()[i] = 7.0f;
  }
  StorageHandle clean = Acquire(64, /*zero=*/true);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(clean.get()[i], 0.0f);
}

TEST(StoragePoolTest, OffModeNeverRecycles) {
  ModeGuard guard(Mode::kOff);
  const int64_t h0 = HeapAllocCount();
  for (int rep = 0; rep < 8; ++rep) {
    StorageHandle h = Acquire(256, /*zero=*/false);
  }
  EXPECT_EQ(HeapAllocCount() - h0, 8);
}

TEST(StoragePoolTest, OnModeSteadyStateStopsAllocating) {
  ModeGuard guard(Mode::kOn);
  { StorageHandle warm = Acquire(256, /*zero=*/false); }
  const int64_t h0 = HeapAllocCount();
  for (int rep = 0; rep < 100; ++rep) {
    StorageHandle h = Acquire(256, /*zero=*/false);
  }
  EXPECT_EQ(HeapAllocCount() - h0, 0);
}

TEST(StoragePoolTest, StatsAccounting) {
  ModeGuard guard(Mode::kOn);
  const Stats before = GetStats();
  {
    StorageHandle a = Acquire(100, /*zero=*/false);  // class 128
    StorageHandle b = Acquire(100, /*zero=*/false);
    const Stats live = GetStats();
    EXPECT_EQ(live.live_bytes - before.live_bytes,
              2 * 128 * static_cast<int64_t>(sizeof(float)));
    EXPECT_EQ(live.acquires - before.acquires, 2);
    EXPECT_EQ(live.heap_allocs - before.heap_allocs, 2);
  }
  const Stats after = GetStats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.pooled_bytes - before.pooled_bytes,
            2 * 128 * static_cast<int64_t>(sizeof(float)));
  // Reacquire: a hit, no new heap allocation, bytes move pooled -> live.
  StorageHandle c = Acquire(100, /*zero=*/false);
  const Stats hit = GetStats();
  EXPECT_EQ(hit.hits - after.hits, 1);
  EXPECT_EQ(hit.heap_allocs, after.heap_allocs);
  EXPECT_EQ(hit.pooled_bytes - before.pooled_bytes,
            128 * static_cast<int64_t>(sizeof(float)));
}

TEST(StoragePoolTest, CrossThreadFreeReachesSharedPool) {
  ModeGuard guard(Mode::kOn);
  // Allocate here, free on another thread: the buffer must become
  // acquirable from this thread again via the shared overflow pool.
  StorageHandle h = Acquire(300, /*zero=*/false);  // class 384
  float* raw = h.get();
  std::thread t([h = std::move(h)]() mutable {
    h.reset();          // releases into the worker's thread cache
    FlushThreadCache();  // ...and pushes it to the shared pool
  });
  t.join();
  StorageHandle again = Acquire(300, /*zero=*/false);
  EXPECT_EQ(again.get(), raw);
}

TEST(StoragePoolTest, ThreadExitFlushesItsCache) {
  ModeGuard guard(Mode::kOn);
  float* raw = nullptr;
  std::thread t([&] {
    StorageHandle h = Acquire(500, /*zero=*/false);  // class 512
    raw = h.get();
  });  // thread_local cache destructor flushes to the shared pool
  t.join();
  StorageHandle again = Acquire(500, /*zero=*/false);
  EXPECT_EQ(again.get(), raw);
}

TEST(StoragePoolTest, ScrubPoisonsUninitialisedAcquires) {
  ModeGuard guard(Mode::kScrub);
  const uint32_t expect_bits = [] {
    uint32_t b;
    const float f = ScrubPattern();
    std::memcpy(&b, &f, sizeof(b));
    return b;
  }();
  StorageHandle h = Acquire(64, /*zero=*/false);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(std::isnan(h.get()[i]));
    uint32_t bits;
    std::memcpy(&bits, &h.get()[i], sizeof(bits));
    EXPECT_EQ(bits, expect_bits);
  }
  // Zeroed acquires stay zero in scrub mode too.
  StorageHandle z = Acquire(64, /*zero=*/true);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(z.get()[i], 0.0f);
}

TEST(StoragePoolTest, ScrubPoisonsRecycledBuffers) {
  ModeGuard guard(Mode::kScrub);
  {
    StorageHandle h = Acquire(64, /*zero=*/true);
    for (int i = 0; i < 64; ++i) h.get()[i] = 3.0f;
  }
  // The recycled buffer must not leak the previous tensor's values.
  StorageHandle again = Acquire(64, /*zero=*/false);
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(std::isnan(again.get()[i]));
}

TEST(StoragePoolTest, ModeNames) {
  EXPECT_EQ(ModeName(Mode::kOff), "off");
  EXPECT_EQ(ModeName(Mode::kOn), "on");
  EXPECT_EQ(ModeName(Mode::kScrub), "scrub");
}

TEST(StoragePoolTest, ScratchLeaseReturnsBufferOnDestruction) {
  ModeGuard guard(Mode::kOn);
  float* raw;
  {
    ScratchLease lease(200);  // class 256
    raw = lease.data();
    ASSERT_NE(raw, nullptr);
  }
  StorageHandle h = Acquire(200, /*zero=*/false);
  EXPECT_EQ(h.get(), raw);
}

TEST(StoragePoolTest, ZeroElementAcquireAllocatesNothing) {
  const int64_t h0 = HeapAllocCount();
  StorageHandle h = Acquire(0, /*zero=*/true);
  EXPECT_EQ(h, nullptr);
  EXPECT_EQ(HeapAllocCount(), h0);
}

// --- Tensor-level semantics of the zero/uninitialised split --------------

TEST(TensorPoolTest, UninitializedIsPoisonedUnderScrub) {
  ModeGuard guard(Mode::kScrub);
  Tensor t = Tensor::Uninitialized(Shape{4, 4});
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_TRUE(std::isnan(t.data()[i]));
  }
  // The documented guarantee: Tensor(Shape) and Zeros are zero in every
  // mode, even on a recycled buffer.
  Tensor z(Shape{4, 4});
  for (int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z.data()[i], 0.0f);
}

TEST(TensorPoolTest, RecycledTensorBufferIsReused) {
  ModeGuard guard(Mode::kOn);
  const float* raw;
  {
    Tensor t = Tensor::Uninitialized(Shape{32, 32});
    raw = t.data();
  }
  Tensor u = Tensor::Uninitialized(Shape{32, 32});
  EXPECT_EQ(u.data(), raw);
}

TEST(TensorPoolTest, EmptyTensorsDoNotShareBuffers) {
  Tensor a;
  Tensor b;
  EXPECT_FALSE(a.SharesBufferWith(b));
  EXPECT_FALSE(a.SharesBufferWith(a.Clone()));
}

TEST(TensorPoolTest, FromVectorBypassesPoolAndFreesCleanly) {
  ModeGuard guard(Mode::kOn);
  std::vector<float> v = {1, 2, 3, 4};
  const float* raw = v.data();
  Tensor t = Tensor::FromVector(Shape{4}, std::move(v));
  EXPECT_EQ(t.data(), raw);  // zero-copy adoption
  EXPECT_EQ(t.at({2}), 3.0f);
}

// Read-before-write of an uninitialised buffer is exactly what scrub +
// the full tape audit exist to catch: the scrub NaNs flow into the tape
// and the auditor aborts naming the offending op.
TEST(TensorPoolDeathTest, ScrubTurnsReadBeforeWriteIntoAudit)
{
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetMode(Mode::kScrub);
        ag::audit::SetTapeAuditLevel(ag::audit::AuditLevel::kFull);
        ag::Var leaked(Tensor::Uninitialized(Shape{8, 8}), true);
        ag::SumAll(ag::Scale(leaked, 2.0f)).Backward();
      },
      "non-finite");
}

}  // namespace
}  // namespace came::tensor::pool
