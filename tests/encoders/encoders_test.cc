#include <gtest/gtest.h>

#include <cmath>

#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "encoders/gin.h"
#include "encoders/structural_pretrain.h"
#include "encoders/text_encoder.h"

namespace came::encoders {
namespace {

using datagen::DrugFamily;

double Cosine(const tensor::Tensor& a, const tensor::Tensor& b) {
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    dot += static_cast<double>(a.data()[i]) * b.data()[i];
    na += static_cast<double>(a.data()[i]) * a.data()[i];
    nb += static_cast<double>(b.data()[i]) * b.data()[i];
  }
  return dot / (std::sqrt(na * nb) + 1e-12);
}

// --- GIN ---------------------------------------------------------------

TEST(GinTest, EncodeShapeAndDeterminism) {
  GinEncoder::Config cfg;
  cfg.out_dim = 16;
  GinEncoder gin(cfg);
  Rng rng(1);
  datagen::Molecule m = datagen::GenerateMolecule(DrugFamily::kPhenol, &rng);
  tensor::Tensor e1 = gin.Encode(m);
  tensor::Tensor e2 = gin.Encode(m);
  EXPECT_EQ(e1.shape(), (tensor::Shape{16}));
  for (int64_t i = 0; i < 16; ++i) EXPECT_EQ(e1.data()[i], e2.data()[i]);
}

TEST(GinTest, NodeStatesShape) {
  GinEncoder gin({});
  datagen::Molecule m = datagen::FamilyScaffold(DrugFamily::kPiperazine);
  ag::Var states = gin.NodeStates(m);
  EXPECT_EQ(states.dim(0), m.num_atoms());
  EXPECT_EQ(states.dim(1), gin.out_dim());
}

TEST(GinTest, PretrainReducesMaskedLoss) {
  GinEncoder gin({});
  Rng rng(2);
  std::vector<datagen::Molecule> mols;
  for (int i = 0; i < 40; ++i) {
    mols.push_back(datagen::GenerateMolecule(
        static_cast<DrugFamily>(i % datagen::kNumDrugFamilies), &rng));
  }
  const float first = gin.Pretrain(mols, 1, 1e-3f);
  float last = first;
  for (int e = 0; e < 4; ++e) last = gin.Pretrain(mols, 1, 1e-3f);
  EXPECT_LT(last, first);
}

TEST(GinTest, SameFamilyMoreSimilarThanCrossFamily) {
  GinEncoder gin({});
  Rng rng(3);
  std::vector<datagen::Molecule> mols;
  for (int i = 0; i < 60; ++i) {
    mols.push_back(datagen::GenerateMolecule(
        static_cast<DrugFamily>(i % datagen::kNumDrugFamilies), &rng));
  }
  gin.Pretrain(mols, 2, 1e-3f);
  double same = 0;
  double cross = 0;
  int n_same = 0;
  int n_cross = 0;
  std::vector<tensor::Tensor> encs;
  for (const auto& m : mols) encs.push_back(gin.Encode(m));
  for (size_t i = 0; i < mols.size(); ++i) {
    for (size_t j = i + 1; j < mols.size(); ++j) {
      const double c = Cosine(encs[i], encs[j]);
      if (mols[i].family == mols[j].family) {
        same += c;
        ++n_same;
      } else {
        cross += c;
        ++n_cross;
      }
    }
  }
  EXPECT_GT(same / n_same, cross / n_cross);
}

// --- text encoder -------------------------------------------------------

TEST(TextEncoderTest, OutputShapeAndDeterminism) {
  TextEncoder enc({});
  datagen::EntityText t{"Temocillin", "a penicillin-type antibiotic"};
  tensor::Tensor a = enc.Encode(t);
  tensor::Tensor b = enc.Encode(t);
  EXPECT_EQ(a.numel(), enc.out_dim());
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(TextEncoderTest, SharedSuffixIncreasesSimilarity) {
  TextEncoder enc({});
  datagen::EntityText a{"Temocillin", "an antibiotic"};
  datagen::EntityText b{"Zarocillin", "an antibiotic"};
  datagen::EntityText c{"Bravastatin", "a statin"};
  EXPECT_GT(Cosine(enc.Encode(a), enc.Encode(b)),
            Cosine(enc.Encode(a), enc.Encode(c)));
}

TEST(TextEncoderTest, HashedBagIsL2Normalised) {
  TextEncoder enc({});
  tensor::Tensor bag = enc.HashedNgrams({"Aspirin", "pain reliever"});
  double norm = 0;
  for (int64_t i = 0; i < bag.numel(); ++i) {
    norm += static_cast<double>(bag.data()[i]) * bag.data()[i];
  }
  EXPECT_NEAR(norm, 1.0, 1e-4);
}

TEST(TextEncoderTest, CaseInsensitive) {
  TextEncoder enc({});
  tensor::Tensor a = enc.Encode({"ASPIRIN", "X"});
  tensor::Tensor b = enc.Encode({"aspirin", "x"});
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

// --- structural pretrain --------------------------------------------------

TEST(StructuralPretrainTest, ProducesNormalisedRows) {
  auto bkg = datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05));
  StructuralPretrainConfig cfg;
  cfg.epochs = 3;
  tensor::Tensor emb = PretrainStructuralEmbeddings(bkg.dataset, cfg);
  EXPECT_EQ(emb.dim(0), bkg.dataset.num_entities());
  EXPECT_EQ(emb.dim(1), cfg.dim);
  for (int64_t r = 0; r < emb.dim(0); ++r) {
    double norm = 0;
    for (int64_t j = 0; j < cfg.dim; ++j) {
      norm += static_cast<double>(emb.at({r, j})) * emb.at({r, j});
    }
    EXPECT_NEAR(norm, 1.0, 1e-3) << "row " << r;
  }
}

TEST(StructuralPretrainTest, ConnectedEntitiesCloserThanRandom) {
  auto bkg = datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.1));
  StructuralPretrainConfig cfg;
  cfg.epochs = 10;
  tensor::Tensor emb = PretrainStructuralEmbeddings(bkg.dataset, cfg);
  auto row = [&](int64_t e) {
    tensor::Tensor t({cfg.dim});
    for (int64_t j = 0; j < cfg.dim; ++j) t.data()[j] = emb.at({e, j});
    return t;
  };
  // Average similarity between linked pairs should exceed random pairs.
  double linked = 0;
  int n_linked = 0;
  for (size_t i = 0; i < bkg.dataset.train.size() && n_linked < 300; ++i) {
    const auto& t = bkg.dataset.train[i];
    linked += Cosine(row(t.head), row(t.tail));
    ++n_linked;
  }
  Rng rng(11);
  double random = 0;
  int n_random = 300;
  for (int i = 0; i < n_random; ++i) {
    const int64_t a = rng.UniformInt(0, bkg.dataset.num_entities() - 1);
    const int64_t b = rng.UniformInt(0, bkg.dataset.num_entities() - 1);
    random += Cosine(row(a), row(b));
  }
  EXPECT_GT(linked / n_linked, random / n_random);
}

// --- feature bank ----------------------------------------------------------

TEST(FeatureBankTest, BuildPopulatesAllModalities) {
  auto bkg = datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05));
  FeatureBankConfig cfg;
  cfg.gin_pretrain_epochs = 1;
  cfg.gin_pretrain_sample = 30;
  cfg.pretrain_structural = true;
  cfg.structural.epochs = 2;
  FeatureBank bank = BuildFeatureBank(bkg, cfg);
  EXPECT_EQ(bank.num_entities(), bkg.dataset.num_entities());
  EXPECT_TRUE(bank.has_structural());
  int64_t n_mol = 0;
  for (int64_t e = 0; e < bank.num_entities(); ++e) {
    const bool compound = bkg.dataset.vocab.entity_type(e) ==
                          kg::EntityType::kCompound;
    EXPECT_EQ(bank.has_molecule(e), compound);
    n_mol += bank.has_molecule(e);
    // Text features must be non-trivial for every entity.
    double sum = 0;
    for (int64_t j = 0; j < bank.dim_t(); ++j) {
      sum += std::fabs(bank.text_features().at({e, j}));
    }
    EXPECT_GT(sum, 0.0);
  }
  EXPECT_GT(n_mol, 0);
}

TEST(FeatureBankTest, NonCompoundMoleculeRowsAreZero) {
  auto bkg = datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05));
  FeatureBankConfig cfg;
  cfg.gin_pretrain_epochs = 0;
  FeatureBank bank = BuildFeatureBank(bkg, cfg);
  for (int64_t e = 0; e < bank.num_entities(); ++e) {
    if (bank.has_molecule(e)) continue;
    for (int64_t j = 0; j < bank.dim_m(); ++j) {
      EXPECT_EQ(bank.molecule_features().at({e, j}), 0.0f);
    }
  }
}

}  // namespace
}  // namespace came::encoders
