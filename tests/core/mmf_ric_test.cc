#include <gtest/gtest.h>

#include "core/mmf.h"
#include "core/ric.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace came::core {
namespace {

ag::Var RandomVar(tensor::Shape shape, Rng* rng, bool grad = true) {
  return ag::Var(nn::NormalInit(std::move(shape), rng, 1.0), grad);
}

// --- ExchangeFusion ----------------------------------------------------

TEST(ExchangeFusionTest, VeryLowThetaExchangesNothing) {
  Rng rng(1);
  ag::Var x = RandomVar({3, 6}, &rng, false);
  ag::Var y = RandomVar({3, 6}, &rng, false);
  auto [ex, ey] = ExchangeFusion(x, y, -100.0f);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(ex.value().data()[i], x.value().data()[i]);
    EXPECT_EQ(ey.value().data()[i], y.value().data()[i]);
  }
}

TEST(ExchangeFusionTest, VeryHighThetaSwapsEverything) {
  Rng rng(2);
  ag::Var x = RandomVar({3, 6}, &rng, false);
  ag::Var y = RandomVar({3, 6}, &rng, false);
  auto [ex, ey] = ExchangeFusion(x, y, 100.0f);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(ex.value().data()[i], y.value().data()[i]);
    EXPECT_EQ(ey.value().data()[i], x.value().data()[i]);
  }
}

TEST(ExchangeFusionTest, OnlyLowAttentionPositionsExchange) {
  // With theta = 0, positions below the row mean (LayerNorm < 0) swap.
  ag::Var x(tensor::Tensor::FromVector({1, 4}, {10, -10, 10, -10}));
  ag::Var y(tensor::Tensor::FromVector({1, 4}, {1, 2, 3, 4}));
  auto [ex, ey] = ExchangeFusion(x, y, 0.0f);
  // x's negative positions take y's values.
  EXPECT_EQ(ex.value().data()[0], 10.0f);
  EXPECT_EQ(ex.value().data()[1], 2.0f);
  EXPECT_EQ(ex.value().data()[2], 10.0f);
  EXPECT_EQ(ex.value().data()[3], 4.0f);
}

TEST(ExchangeFusionTest, ExchangeUsesOriginalValuesBothWays) {
  // y's low positions must receive x's ORIGINAL values even at positions
  // x itself exchanged away.
  ag::Var x(tensor::Tensor::FromVector({1, 2}, {-5, 5}));
  ag::Var y(tensor::Tensor::FromVector({1, 2}, {-7, 7}));
  auto [ex, ey] = ExchangeFusion(x, y, 0.0f);
  EXPECT_EQ(ex.value().data()[0], -7.0f);  // x[0] low -> takes y[0]
  EXPECT_EQ(ey.value().data()[0], -5.0f);  // y[0] low -> takes ORIGINAL x[0]
}

TEST(ExchangeFusionTest, GradientRoutesThroughSelectedSource) {
  ag::Var x(tensor::Tensor::FromVector({1, 2}, {-5, 5}), true);
  ag::Var y(tensor::Tensor::FromVector({1, 2}, {7, 7}), true);
  auto [ex, ey] = ExchangeFusion(x, y, 0.0f);
  ag::SumAll(ex).Backward();
  // ex = [y0, x1]: gradient 1 flows to y[0] and x[1].
  EXPECT_EQ(x.grad().data()[0], 0.0f);
  EXPECT_EQ(x.grad().data()[1], 1.0f);
  EXPECT_EQ(y.grad().data()[0], 1.0f);
  EXPECT_EQ(y.grad().data()[1], 0.0f);
}

// --- MMF -----------------------------------------------------------------

MmfConfig ThreeModalConfig() {
  MmfConfig cfg;
  cfg.fusion_dim = 8;
  cfg.input_dims = {6, 10, 8};
  cfg.tca.num_heads = 2;
  return cfg;
}

TEST(MmfTest, FusionShape) {
  Rng rng(3);
  Mmf mmf(ThreeModalConfig(), &rng);
  std::vector<ag::Var> inputs = {RandomVar({4, 6}, &rng),
                                 RandomVar({4, 10}, &rng),
                                 RandomVar({4, 8}, &rng)};
  ag::Var h_f = mmf.Forward(inputs);
  EXPECT_EQ(h_f.shape(), (tensor::Shape{4, 8}));
}

TEST(MmfTest, TwoModalitiesWork) {
  Rng rng(4);
  MmfConfig cfg = ThreeModalConfig();
  cfg.input_dims = {6, 10};
  Mmf mmf(cfg, &rng);
  ag::Var h_f = mmf.Forward({RandomVar({4, 6}, &rng),
                             RandomVar({4, 10}, &rng)});
  EXPECT_EQ(h_f.shape(), (tensor::Shape{4, 8}));
}

TEST(MmfTest, SingleModalityDegeneratesToProjection) {
  Rng rng(5);
  MmfConfig cfg = ThreeModalConfig();
  cfg.input_dims = {6};
  Mmf mmf(cfg, &rng);
  ag::Var h_f = mmf.Forward({RandomVar({4, 6}, &rng)});
  EXPECT_EQ(h_f.shape(), (tensor::Shape{4, 8}));
}

TEST(MmfTest, DisabledUsesHadamardOnly) {
  Rng rng(6);
  MmfConfig cfg = ThreeModalConfig();
  cfg.enabled = false;
  Mmf mmf(cfg, &rng);
  std::vector<ag::Var> inputs = {RandomVar({2, 6}, &rng),
                                 RandomVar({2, 10}, &rng),
                                 RandomVar({2, 8}, &rng)};
  ag::Var h_f = mmf.Forward(inputs);
  EXPECT_EQ(h_f.shape(), (tensor::Shape{2, 8}));
  // Hadamard of sigmoids stays in (0, 1).
  for (int64_t i = 0; i < h_f.numel(); ++i) {
    EXPECT_GT(h_f.value().data()[i], 0.0f);
    EXPECT_LT(h_f.value().data()[i], 1.0f);
  }
}

TEST(MmfTest, AblationFlagsChangeOutput) {
  Rng rng(7);
  std::vector<ag::Var> inputs = {RandomVar({2, 6}, &rng, false),
                                 RandomVar({2, 10}, &rng, false),
                                 RandomVar({2, 8}, &rng, false)};
  Rng r1(42);
  Rng r2(42);
  MmfConfig with = ThreeModalConfig();
  MmfConfig without = ThreeModalConfig();
  without.use_tca = false;
  Mmf m1(with, &r1);
  Mmf m2(without, &r2);  // identical weights, different wiring
  ag::Var a = m1.Forward(inputs);
  ag::Var b = m2.Forward(inputs);
  bool any_diff = false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    any_diff = any_diff || a.value().data()[i] != b.value().data()[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(MmfTest, GradientsReachAllParameters) {
  Rng rng(8);
  Mmf mmf(ThreeModalConfig(), &rng);
  std::vector<ag::Var> inputs = {RandomVar({3, 6}, &rng),
                                 RandomVar({3, 10}, &rng),
                                 RandomVar({3, 8}, &rng)};
  ag::SumAll(ag::Square(mmf.Forward(inputs))).Backward();
  int with_grad = 0;
  int total = 0;
  for (const auto& [name, p] : mmf.NamedParameters()) {
    ++total;
    with_grad += p.has_grad() && tensor::MaxAbs(p.grad()) > 0;
  }
  // The EX step can zero a few positions but the bulk must train.
  EXPECT_GT(with_grad, total * 3 / 4);
}

// --- RIC -----------------------------------------------------------------

TEST(RicTest, OutputsOnePerModalityOfDoubleWidth) {
  Rng rng(9);
  RicConfig cfg;
  cfg.rel_dim = 8;
  cfg.input_dims = {6, 10, 8};
  Ric ric(cfg, &rng);
  std::vector<ag::Var> inputs = {RandomVar({4, 6}, &rng),
                                 RandomVar({4, 10}, &rng),
                                 RandomVar({4, 8}, &rng)};
  ag::Var r = RandomVar({4, 8}, &rng);
  auto v = ric.Forward(inputs, r);
  ASSERT_EQ(v.size(), 3u);
  for (const auto& vi : v) {
    EXPECT_EQ(vi.shape(), (tensor::Shape{4, 16}));
  }
}

TEST(RicTest, DisabledIsPlainConcat) {
  Rng rng(10);
  RicConfig cfg;
  cfg.rel_dim = 4;
  cfg.input_dims = {4};
  cfg.enabled = false;
  Ric ric(cfg, &rng);
  ag::Var h = RandomVar({2, 4}, &rng, false);
  ag::Var r = RandomVar({2, 4}, &rng, false);
  auto v = ric.Forward({h}, r);
  // Second half must be exactly the relation embedding.
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(v[0].value().at({b, 4 + j}), r.value().at({b, j}));
    }
  }
}

TEST(RicTest, RelationGradientFlows) {
  Rng rng(11);
  RicConfig cfg;
  cfg.rel_dim = 6;
  cfg.input_dims = {6, 6};
  Ric ric(cfg, &rng);
  ag::Var r = RandomVar({3, 6}, &rng);
  auto v = ric.Forward({RandomVar({3, 6}, &rng), RandomVar({3, 6}, &rng)}, r);
  ag::SumAll(ag::Square(ag::Concat(v, 1))).Backward();
  EXPECT_TRUE(r.has_grad());
  EXPECT_GT(tensor::MaxAbs(r.grad()), 0.0f);
}

}  // namespace
}  // namespace came::core
