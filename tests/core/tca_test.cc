#include "core/tca.h"

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace came::core {
namespace {

ag::Var RandomVar(tensor::Shape shape, Rng* rng, bool grad = true) {
  return ag::Var(nn::NormalInit(std::move(shape), rng, 1.0), grad);
}

TEST(TcaTest, OutputShapesMatchInputs) {
  Rng rng(1);
  TcaConfig cfg;
  cfg.dim = 8;
  cfg.num_heads = 2;
  Tca tca(cfg, &rng);
  ag::Var q = RandomVar({5, 8}, &rng);
  ag::Var d = RandomVar({5, 8}, &rng);
  auto [qt, dt] = tca.Forward(q, d);
  EXPECT_EQ(qt.shape(), (tensor::Shape{5, 8}));
  EXPECT_EQ(dt.shape(), (tensor::Shape{5, 8}));
}

TEST(TcaTest, SingleHeadWorks) {
  Rng rng(2);
  TcaConfig cfg;
  cfg.dim = 6;
  cfg.num_heads = 1;
  Tca tca(cfg, &rng);
  ag::Var q = RandomVar({3, 6}, &rng);
  ag::Var d = RandomVar({3, 6}, &rng);
  auto [qt, dt] = tca.Forward(q, d);
  EXPECT_EQ(qt.shape(), (tensor::Shape{3, 6}));
}

TEST(TcaTest, ParameterCountMatchesFormula) {
  Rng rng(3);
  TcaConfig cfg;
  cfg.dim = 8;
  cfg.num_heads = 3;
  Tca tca(cfg, &rng);
  // 4 projection matrices per head + 2 head projections + tau0.
  const int64_t expected = 3 * 4 * 8 * 8 + 2 * (3 * 8) * 8 + 1;
  EXPECT_EQ(tca.NumParameters(), expected);
}

TEST(TcaTest, DifferentHeadsDifferentTemperatures) {
  // tau_i = tau0 * lambda * i: just verify tau0 is learnable and exposed.
  Rng rng(4);
  TcaConfig cfg;
  cfg.dim = 4;
  cfg.tau0_init = 2.5f;
  Tca tca(cfg, &rng);
  EXPECT_FLOAT_EQ(tca.tau0(), 2.5f);
}

TEST(TcaTest, GradientsFlowToAllParameters) {
  Rng rng(5);
  TcaConfig cfg;
  cfg.dim = 6;
  cfg.num_heads = 2;
  Tca tca(cfg, &rng);
  ag::Var q = RandomVar({4, 6}, &rng);
  ag::Var d = RandomVar({4, 6}, &rng);
  auto [qt, dt] = tca.Forward(q, d);
  ag::SumAll(ag::Add(ag::Square(qt), ag::Square(dt))).Backward();
  for (const auto& [name, p] : tca.NamedParameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
    EXPECT_GT(tensor::MaxAbs(p.grad()), 0.0f) << name;
  }
  EXPECT_TRUE(q.has_grad());
  EXPECT_TRUE(d.has_grad());
}

TEST(TcaTest, DeterministicForward) {
  Rng rng(6);
  TcaConfig cfg;
  cfg.dim = 6;
  Tca tca(cfg, &rng);
  ag::Var q = RandomVar({2, 6}, &rng, false);
  ag::Var d = RandomVar({2, 6}, &rng, false);
  auto [q1, d1] = tca.Forward(q, d);
  auto [q2, d2] = tca.Forward(q, d);
  for (int64_t i = 0; i < q1.numel(); ++i) {
    EXPECT_EQ(q1.value().data()[i], q2.value().data()[i]);
  }
}

TEST(TcaTest, EndToEndGradCheck) {
  Rng rng(7);
  TcaConfig cfg;
  cfg.dim = 4;
  cfg.num_heads = 2;
  Tca tca(cfg, &rng);
  ag::Var q = RandomVar({2, 4}, &rng);
  ag::Var d = RandomVar({2, 4}, &rng);
  auto fn = [&tca](const std::vector<ag::Var>& v) {
    auto [qt, dt] = tca.Forward(v[0], v[1]);
    return ag::SumAll(ag::Add(ag::Square(qt), ag::Square(dt)));
  };
  EXPECT_LT(ag::GradCheck(fn, {q, d}, 1e-2), 8e-2);
}

TEST(CoAttentionApplyTest, MatchesUnfusedComposition) {
  // The fused op must agree with the explicit outer-product + softmax +
  // apply pipeline it replaced.
  Rng rng(8);
  const int64_t b = 3;
  const int64_t d = 5;
  ag::Var x = RandomVar({b, d}, &rng, false);
  ag::Var a = RandomVar({b, d}, &rng, false);
  ag::Var bb = RandomVar({b, d}, &rng, false);
  ag::Var inv_tau = ag::Const(tensor::Tensor::Scalar(0.5f));

  ag::Var fused = ag::CoAttentionApply(x, a, bb, inv_tau);

  ag::Var m = ag::Scale(
      ag::BatchMatMul(ag::Reshape(a, {b, d, 1}), ag::Reshape(bb, {b, 1, d})),
      0.5f);
  ag::Var s = ag::SoftmaxAlong(m, 1);
  ag::Var ref =
      ag::Reshape(ag::BatchMatMul(ag::Reshape(x, {b, 1, d}), s), {b, d});
  for (int64_t i = 0; i < fused.numel(); ++i) {
    EXPECT_NEAR(fused.value().data()[i], ref.value().data()[i], 2e-3);
  }
}

TEST(CoAttentionApplyTest, GradCheckAllInputs) {
  Rng rng(9);
  ag::Var x = RandomVar({2, 4}, &rng);
  ag::Var a = RandomVar({2, 4}, &rng);
  ag::Var b = RandomVar({2, 4}, &rng);
  ag::Var u(tensor::Tensor::Scalar(0.7f), true);
  auto fn = [](const std::vector<ag::Var>& v) {
    return ag::SumAll(ag::Square(
        ag::CoAttentionApply(v[0], v[1], v[2], v[3])));
  };
  EXPECT_LT(ag::GradCheck(fn, {x, a, b, u}, 1e-2), 8e-2);
}

}  // namespace
}  // namespace came::core
