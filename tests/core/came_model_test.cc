#include "core/came_model.h"

#include <gtest/gtest.h>

#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

namespace came::core {
namespace {

class CamEFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bkg_ = new datagen::GeneratedBkg(
        datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05)));
    encoders::FeatureBankConfig cfg;
    cfg.gin_pretrain_epochs = 0;
    cfg.pretrain_structural = true;
    cfg.structural.dim = 16;
    cfg.structural.epochs = 2;
    bank_ = new encoders::FeatureBank(BuildFeatureBank(*bkg_, cfg));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete bkg_;
  }

  baselines::ModelContext Context() const {
    return {bkg_->dataset.num_entities(),
            bkg_->dataset.num_relations_with_inverses(), bank_,
            &bkg_->dataset.train, 5};
  }
  CamEConfig Config() const {
    CamEConfig cfg;
    cfg.embed_dim = 16;
    cfg.fusion_dim = 16;
    cfg.reshape_h = 4;
    cfg.conv_filters = 8;
    return cfg;
  }

  static datagen::GeneratedBkg* bkg_;
  static encoders::FeatureBank* bank_;
};

datagen::GeneratedBkg* CamEFixture::bkg_ = nullptr;
encoders::FeatureBank* CamEFixture::bank_ = nullptr;

TEST_F(CamEFixture, ThreeModalitiesOnDrkg) {
  CamE model(Context(), Config());
  ASSERT_EQ(model.modality_names().size(), 3u);
  EXPECT_EQ(model.modality_names()[0], "molecule");
  EXPECT_EQ(model.modality_names()[1], "text");
  EXPECT_EQ(model.modality_names()[2], "structural");
}

TEST_F(CamEFixture, HeadsGrowParameterCount) {
  CamEConfig one = Config();
  one.num_heads = 1;
  CamEConfig three = Config();
  three.num_heads = 3;
  CamE m1(Context(), one);
  CamE m3(Context(), three);
  EXPECT_GT(m3.NumParameters(), m1.NumParameters());
}

TEST_F(CamEFixture, PretrainedStructuralInitIsUsed) {
  CamEConfig cfg = Config();
  cfg.init_structural_from_pretrained = true;
  CamE model(Context(), cfg);
  // The entity parameter must match the pre-trained rows exactly.
  ag::Var entities;
  for (const auto& [name, p] : model.NamedParameters()) {
    if (name == "entities") entities = p;
  }
  ASSERT_TRUE(entities.defined());
  const tensor::Tensor& pre = bank_->structural_features();
  for (int64_t j = 0; j < 16; ++j) {
    EXPECT_EQ(entities.value().at({0, j}), pre.at({0, j}));
  }
}

TEST_F(CamEFixture, RandomInitWhenFlagOff) {
  CamE model(Context(), Config());
  ag::Var entities;
  for (const auto& [name, p] : model.NamedParameters()) {
    if (name == "entities") entities = p;
  }
  const tensor::Tensor& pre = bank_->structural_features();
  bool differs = false;
  for (int64_t j = 0; j < 16 && !differs; ++j) {
    differs = entities.value().at({0, j}) != pre.at({0, j});
  }
  EXPECT_TRUE(differs);
}

TEST_F(CamEFixture, TrainingImprovesTrainFit) {
  CamE model(Context(), Config());
  train::TrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 128;
  train::Trainer trainer(&model, bkg_->dataset, cfg);
  const float first = trainer.RunEpoch();
  float last = first;
  for (int i = 1; i < 5; ++i) last = trainer.RunEpoch();
  EXPECT_LT(last, first * 0.9f);
}

TEST_F(CamEFixture, EvalForwardIsDeterministic) {
  CamE model(Context(), Config());
  model.SetTraining(false);
  ag::NoGradGuard guard;
  ag::Var a = model.ScoreAllTails({1, 2, 3}, {0, 1, 2});
  ag::Var b = model.ScoreAllTails({1, 2, 3}, {0, 1, 2});
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.value().data()[i], b.value().data()[i]);
  }
}

TEST_F(CamEFixture, TrainForwardIsStochastic) {
  CamE model(Context(), Config());
  model.SetTraining(true);
  ag::Var a = model.ScoreAllTails({1}, {0});
  ag::Var b = model.ScoreAllTails({1}, {0});
  bool differs = false;
  for (int64_t i = 0; i < a.numel() && !differs; ++i) {
    differs = a.value().data()[i] != b.value().data()[i];
  }
  EXPECT_TRUE(differs);  // dropout active
}

TEST_F(CamEFixture, AblationsShrinkOrRewireParameters) {
  CamE full(Context(), Config());
  CamEConfig no_text = Config();
  no_text.use_text = false;
  CamE ablated(Context(), no_text);
  EXPECT_LT(ablated.NumParameters(), full.NumParameters());
  EXPECT_EQ(ablated.modality_names().size(), 2u);
}

TEST_F(CamEFixture, OmahaDatasetDropsMoleculeModality) {
  auto omaha = datagen::GenerateBkg(datagen::BkgConfig::OmahaMmSynth(0.05));
  encoders::FeatureBankConfig fb;
  encoders::FeatureBank bank = BuildFeatureBank(omaha, fb);
  baselines::ModelContext ctx{omaha.dataset.num_entities(),
                              omaha.dataset.num_relations_with_inverses(),
                              &bank, &omaha.dataset.train, 5};
  CamE model(ctx, Config());
  // Molecule slot disappears even though use_molecule is true.
  ASSERT_EQ(model.modality_names().size(), 2u);
  EXPECT_EQ(model.modality_names()[0], "text");
}

}  // namespace
}  // namespace came::core
