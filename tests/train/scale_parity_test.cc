// Sharded-vs-in-RAM bitwise parity: the beyond-RAM storage layout must be
// invisible to the numbers. A trainer running on mmap-backed multi-shard
// stores with a tight residency budget must produce, bit for bit, the
// losses, parameters, evaluation ranks, and checkpoint bytes of the
// in-RAM single-shard trainer — at any thread count. Thread counts are
// pinned via CAME_NUM_THREADS, which the ParallelFor pool reads once.

#include "train/scale_trainer.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/parallel_for.h"
#include "gtest/gtest.h"
#include "kg/filter_index.h"

namespace came::train {
namespace {

std::string TestDir(const std::string& leaf) {
  return "/tmp/came_scale_parity_" + std::to_string(::getpid()) + "_" + leaf;
}

// A small but non-trivial graph: enough entities that a sharded store
// with a 2-shard residency budget actually thrashes.
std::vector<kg::Triple> MakeTriples(int64_t num_entities,
                                    int64_t num_relations, int64_t count,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<kg::Triple> triples;
  triples.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    triples.push_back(kg::Triple{
        static_cast<int64_t>(rng.UniformU64(static_cast<uint64_t>(num_entities))),
        static_cast<int64_t>(
            rng.UniformU64(static_cast<uint64_t>(num_relations))),
        static_cast<int64_t>(
            rng.UniformU64(static_cast<uint64_t>(num_entities)))});
  }
  return triples;
}

struct RunResult {
  std::vector<double> epoch_losses;
  uint32_t params_crc = 0;
  std::string checkpoint_bytes;
  double mrr = 0.0;
  double mr = 0.0;
  int64_t evictions = 0;
};

constexpr int64_t kEntities = 120;
constexpr int64_t kRelations = 4;
constexpr int64_t kTrainTriples = 400;
constexpr int64_t kEvalTriples = 60;

RunResult RunTrainer(const std::string& store_dir, int64_t rows_per_shard,
                     int64_t max_resident) {
  ScaleTrainConfig config;
  config.dim = 16;
  config.batch_size = 64;
  config.negatives = 3;
  config.seed = 99;
  config.eval_panel_rows = 32;
  config.eval_query_batch = 16;
  config.store_dir = store_dir;
  config.rows_per_shard = rows_per_shard;
  config.max_resident_shards = max_resident;

  Result<ScaleTrainer> made = ScaleTrainer::Create(kEntities, kRelations, config);
  EXPECT_TRUE(made.ok()) << made.status().ToString();
  ScaleTrainer trainer = std::move(made).value();

  const std::vector<kg::Triple> train =
      MakeTriples(kEntities, kRelations, kTrainTriples, 17);
  const std::vector<kg::Triple> eval_q =
      MakeTriples(kEntities, kRelations, kEvalTriples, 23);
  kg::FilterIndex filter(kEntities, kRelations);
  filter.AddTriples(train);
  filter.AddTriples(eval_q);

  RunResult result;
  VectorTripleSource source(train);
  for (int epoch = 0; epoch < 3; ++epoch) {
    Result<double> loss = trainer.TrainEpoch(&source);
    EXPECT_TRUE(loss.ok()) << loss.status().ToString();
    result.epoch_losses.push_back(loss.value());
  }

  VectorTripleSource queries(eval_q);
  Result<eval::Metrics> metrics = trainer.EvaluateFiltered(&queries, filter);
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  result.mrr = metrics.value().Mrr();
  result.mr = metrics.value().Mr();

  result.params_crc = trainer.ParamsCrc();
  const std::string ckpt = TestDir("ckpt_" + std::to_string(rows_per_shard) +
                                   "_" + std::to_string(max_resident));
  EXPECT_TRUE(trainer.SaveParams(ckpt).ok());
  EXPECT_TRUE(io::ReadFile(ckpt, &result.checkpoint_bytes).ok());
  std::filesystem::remove(ckpt);

  result.evictions = trainer.entity_store().GetStats().evictions;
  return result;
}

void ExpectBitwiseEqual(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.epoch_losses.size(), b.epoch_losses.size());
  for (size_t i = 0; i < a.epoch_losses.size(); ++i) {
    // Bitwise: doubles compared with ==, not a tolerance.
    EXPECT_EQ(a.epoch_losses[i], b.epoch_losses[i]) << "epoch " << i;
  }
  EXPECT_EQ(a.params_crc, b.params_crc);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.mrr, b.mrr);
  EXPECT_EQ(a.mr, b.mr);
}

class ScaleParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TestDir("stores");
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ScaleParityTest, ShardedMatchesInRamBitwise) {
  const RunResult in_ram = RunTrainer("", 0, 0);
  // 16 rows per shard over 120 entities = 8 shards; residency budget 2
  // forces constant eviction during gather/scatter and the eval sweep.
  const RunResult sharded = RunTrainer(dir_ + "/a", 16, 2);
  EXPECT_GT(sharded.evictions, 0) << "budget never exercised the LRU";
  ExpectBitwiseEqual(in_ram, sharded);

  // Different geometry, same bits.
  const RunResult sharded_wide = RunTrainer(dir_ + "/b", 50, 0);
  ExpectBitwiseEqual(in_ram, sharded_wide);

  // Losses should actually go down over 3 epochs, or the parity above is
  // vacuous (two broken trainers agree too).
  EXPECT_LT(in_ram.epoch_losses.back(), in_ram.epoch_losses.front());
}

TEST_F(ScaleParityTest, ThreadCountDoesNotChangeBits) {
  // The full 2x2 grid — {in-RAM, sharded} x {1 thread, 4 threads} — must
  // land on identical bits.
  const int saved = NumThreads();
  SetNumThreads(1);
  const RunResult ram_1 = RunTrainer("", 0, 0);
  const RunResult shard_1 = RunTrainer(dir_ + "/t1", 16, 2);
  SetNumThreads(4);
  const RunResult ram_4 = RunTrainer("", 0, 0);
  const RunResult shard_4 = RunTrainer(dir_ + "/t4", 16, 2);
  SetNumThreads(saved);
  ExpectBitwiseEqual(ram_1, shard_1);
  ExpectBitwiseEqual(ram_1, ram_4);
  ExpectBitwiseEqual(ram_1, shard_4);
}

TEST_F(ScaleParityTest, TsvSourceMatchesVectorSource) {
  const std::vector<kg::Triple> train =
      MakeTriples(kEntities, kRelations, kTrainTriples, 17);
  const std::string tsv = dir_ + "/train.tsv";
  {
    std::ofstream out(tsv);
    for (const kg::Triple& t : train) {
      out << t.head << '\t' << t.rel << '\t' << t.tail << '\n';
    }
  }

  ScaleTrainConfig config;
  config.dim = 16;
  config.batch_size = 64;
  config.negatives = 3;
  config.seed = 99;

  Result<ScaleTrainer> a = ScaleTrainer::Create(kEntities, kRelations, config);
  Result<ScaleTrainer> b = ScaleTrainer::Create(kEntities, kRelations, config);
  ASSERT_TRUE(a.ok() && b.ok());

  VectorTripleSource vec(train);
  TsvTripleSource file(tsv, kEntities, kRelations);
  Result<double> loss_vec = a.value().TrainEpoch(&vec);
  Result<double> loss_file = b.value().TrainEpoch(&file);
  ASSERT_TRUE(loss_vec.ok() && loss_file.ok());
  EXPECT_EQ(loss_vec.value(), loss_file.value());
  EXPECT_EQ(a.value().ParamsCrc(), b.value().ParamsCrc());
}

TEST_F(ScaleParityTest, TsvSourceRejectsMalformedRows) {
  const std::string tsv = dir_ + "/bad.tsv";
  const auto expect_corrupt = [&](const std::string& contents) {
    std::ofstream(tsv) << contents;
    TsvTripleSource src(tsv, kEntities, kRelations);
    ASSERT_TRUE(src.Reset().ok());
    kg::Triple t;
    Status st = Status::OK();
    for (;;) {
      Result<bool> got = src.Next(&t);
      if (!got.ok()) {
        st = got.status();
        break;
      }
      if (!got.value()) break;
    }
    EXPECT_EQ(st.code(), Status::Code::kCorruption) << contents;
  };
  expect_corrupt("1\t2\n");                 // truncated
  expect_corrupt("1\t0\t2\t3\n");           // extra field
  expect_corrupt("x\t0\t2\n");              // non-numeric head
  expect_corrupt("1\t0\t999999\n");         // out-of-range tail
  expect_corrupt("0\t-1\t2\n");             // negative relation
  expect_corrupt("5\t0\t3\n9999999999999999999\t0\t1\n");  // overflow id
}

TEST_F(ScaleParityTest, CreateRejectsBadConfig) {
  ScaleTrainConfig config;
  config.dim = 0;
  EXPECT_FALSE(ScaleTrainer::Create(10, 2, config).ok());
  config.dim = 8;
  EXPECT_FALSE(ScaleTrainer::Create(0, 2, config).ok());
  config.batch_size = 0;
  EXPECT_FALSE(ScaleTrainer::Create(10, 2, config).ok());
  config.batch_size = 16;
  config.lr = 0.0;
  EXPECT_FALSE(ScaleTrainer::Create(10, 2, config).ok());
  config.lr = 0.01;
  config.beta1 = 1.0;
  EXPECT_FALSE(ScaleTrainer::Create(10, 2, config).ok());
}

}  // namespace
}  // namespace came::train
