#include "train/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "common/io.h"
#include "common/parallel_for.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

namespace came {
namespace {

std::string TmpPath(const std::string& stem) {
  return "/tmp/came_ckpt_test_" + stem + ".bin";
}

std::string Slurp(const std::string& path) {
  std::string out;
  EXPECT_TRUE(io::ReadFile(path, &out).ok()) << path;
  return out;
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Bitwise equality of every parameter of two models, reported per tensor.
void ExpectModelsBitwiseEqual(baselines::KgcModel* a, baselines::KgcModel* b) {
  auto na = a->NamedParameters();
  auto nb = b->NamedParameters();
  ASSERT_EQ(na.size(), nb.size());
  for (size_t i = 0; i < na.size(); ++i) {
    ASSERT_EQ(na[i].first, nb[i].first);
    const float* pa = na[i].second.value().data();
    const float* pb = nb[i].second.value().data();
    for (int64_t j = 0; j < na[i].second.numel(); ++j) {
      ASSERT_EQ(pa[j], pb[j])
          << na[i].first << "[" << j << "] diverged";
    }
  }
}

// --- format round-trip and corruption matrix -----------------------------
//
// These run on a small synthetic CheckpointState so the exhaustive
// every-byte sweeps stay fast.

tensor::Tensor FilledTensor(tensor::Shape shape, float base) {
  tensor::Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = base + 0.25f * static_cast<float>(i);
  }
  return t;
}

train::CheckpointState SyntheticState() {
  train::CheckpointState s;
  s.params.emplace_back("emb.w", FilledTensor({3, 4}, 1.0f));
  s.params.emplace_back("head.bias", FilledTensor({4}, -2.0f));
  s.adam_step = 17;
  s.adam_m = {FilledTensor({3, 4}, 0.1f), FilledTensor({4}, 0.2f)};
  s.adam_v = {FilledTensor({3, 4}, 0.3f), FilledTensor({4}, 0.4f)};
  Rng rng(99);
  for (int i = 0; i < 3; ++i) {
    rng.Normal();  // desynchronise the Box-Muller cache across streams
    s.rng_streams.push_back(rng.GetState());
  }
  s.epochs_run = 5;
  s.has_best = true;
  s.best.rank_sum = 12.5;
  s.best.reciprocal_sum = 1.75;
  s.best.hits1 = 1;
  s.best.hits3 = 2;
  s.best.hits10 = 3;
  s.best.count = 4;
  s.best_snapshot = {FilledTensor({3, 4}, 7.0f), FilledTensor({4}, 8.0f)};
  return s;
}

void ExpectStatesEqual(const train::CheckpointState& a,
                       const train::CheckpointState& b) {
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_EQ(a.params[i].first, b.params[i].first);
    ASSERT_EQ(a.params[i].second.numel(), b.params[i].second.numel());
    for (int64_t j = 0; j < a.params[i].second.numel(); ++j) {
      EXPECT_EQ(a.params[i].second.data()[j], b.params[i].second.data()[j]);
    }
  }
  EXPECT_EQ(a.adam_step, b.adam_step);
  ASSERT_EQ(a.adam_m.size(), b.adam_m.size());
  ASSERT_EQ(a.adam_v.size(), b.adam_v.size());
  for (size_t i = 0; i < a.adam_m.size(); ++i) {
    for (int64_t j = 0; j < a.adam_m[i].numel(); ++j) {
      EXPECT_EQ(a.adam_m[i].data()[j], b.adam_m[i].data()[j]);
    }
    for (int64_t j = 0; j < a.adam_v[i].numel(); ++j) {
      EXPECT_EQ(a.adam_v[i].data()[j], b.adam_v[i].data()[j]);
    }
  }
  ASSERT_EQ(a.rng_streams.size(), b.rng_streams.size());
  for (size_t i = 0; i < a.rng_streams.size(); ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(a.rng_streams[i].s[j], b.rng_streams[i].s[j]);
    }
    EXPECT_EQ(a.rng_streams[i].has_cached_normal,
              b.rng_streams[i].has_cached_normal);
    EXPECT_EQ(a.rng_streams[i].cached_normal, b.rng_streams[i].cached_normal);
  }
  EXPECT_EQ(a.epochs_run, b.epochs_run);
  EXPECT_EQ(a.has_best, b.has_best);
  EXPECT_EQ(a.best.rank_sum, b.best.rank_sum);
  EXPECT_EQ(a.best.reciprocal_sum, b.best.reciprocal_sum);
  EXPECT_EQ(a.best.hits1, b.best.hits1);
  EXPECT_EQ(a.best.hits3, b.best.hits3);
  EXPECT_EQ(a.best.hits10, b.best.hits10);
  EXPECT_EQ(a.best.count, b.best.count);
  ASSERT_EQ(a.best_snapshot.size(), b.best_snapshot.size());
  for (size_t i = 0; i < a.best_snapshot.size(); ++i) {
    for (int64_t j = 0; j < a.best_snapshot[i].numel(); ++j) {
      EXPECT_EQ(a.best_snapshot[i].data()[j], b.best_snapshot[i].data()[j]);
    }
  }
}

TEST(CheckpointFormatTest, RoundTripPreservesEveryField) {
  const std::string path = TmpPath("roundtrip");
  const train::CheckpointState original = SyntheticState();
  ASSERT_TRUE(train::WriteCheckpoint(path, original).ok());
  train::CheckpointState loaded;
  ASSERT_TRUE(train::ReadCheckpoint(path, &loaded).ok());
  ExpectStatesEqual(original, loaded);
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, EmptyStateRoundTrips) {
  const std::string path = TmpPath("empty");
  train::CheckpointState empty;
  ASSERT_TRUE(train::WriteCheckpoint(path, empty).ok());
  train::CheckpointState loaded = SyntheticState();  // pre-dirtied
  ASSERT_TRUE(train::ReadCheckpoint(path, &loaded).ok());
  EXPECT_TRUE(loaded.params.empty());
  EXPECT_TRUE(loaded.rng_streams.empty());
  EXPECT_FALSE(loaded.has_best);
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, WriteIsDeterministic) {
  const std::string pa = TmpPath("det_a");
  const std::string pb = TmpPath("det_b");
  const train::CheckpointState s = SyntheticState();
  ASSERT_TRUE(train::WriteCheckpoint(pa, s).ok());
  ASSERT_TRUE(train::WriteCheckpoint(pb, s).ok());
  EXPECT_EQ(Slurp(pa), Slurp(pb));
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(CheckpointFormatTest, EveryTruncationIsRejected) {
  const std::string path = TmpPath("trunc");
  ASSERT_TRUE(train::WriteCheckpoint(path, SyntheticState()).ok());
  const std::string good = Slurp(path);
  // Truncating the file at every possible byte boundary — including every
  // section header and payload boundary — must yield a clean error, never
  // a crash or a silently half-loaded state.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    Dump(path, good.substr(0, cut));
    train::CheckpointState out;
    const Status st = train::ReadCheckpoint(path, &out);
    ASSERT_FALSE(st.ok()) << "truncation at byte " << cut << " was accepted";
  }
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, EveryByteFlipIsRejected) {
  const std::string path = TmpPath("flip");
  ASSERT_TRUE(train::WriteCheckpoint(path, SyntheticState()).ok());
  const std::string good = Slurp(path);
  // A single bit flip anywhere — magic, version, section ids, lengths,
  // CRCs, payload bytes — must be caught (payload flips by the CRC,
  // header flips by the structural checks).
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    Dump(path, bad);
    train::CheckpointState out;
    const Status st = train::ReadCheckpoint(path, &out);
    ASSERT_FALSE(st.ok()) << "bit flip at byte " << i << " was accepted";
  }
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, TrailingBytesAreRejected) {
  const std::string path = TmpPath("trailing");
  ASSERT_TRUE(train::WriteCheckpoint(path, SyntheticState()).ok());
  std::string padded = Slurp(path);
  padded.push_back('\0');
  Dump(path, padded);
  train::CheckpointState out;
  EXPECT_EQ(train::ReadCheckpoint(path, &out).code(),
            Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, MissingFileIsAnIOError) {
  train::CheckpointState out;
  EXPECT_EQ(train::ReadCheckpoint("/no/such/checkpoint", &out).code(),
            Status::Code::kIOError);
}

// --- fault injection ------------------------------------------------------

TEST(CheckpointFaultInjectionTest, PriorCheckpointSurvivesEveryFault) {
  const std::string path = TmpPath("fault");
  const train::CheckpointState good_state = SyntheticState();
  ASSERT_TRUE(train::WriteCheckpoint(path, good_state).ok());
  const std::string good_bytes = Slurp(path);

  train::CheckpointState other = SyntheticState();
  other.epochs_run = 6;
  other.params[0].second.data()[0] = 1234.5f;

  // A fault only fires when a write crosses the threshold, so every
  // threshold strictly below the file length must kill the save.
  const size_t len = good_bytes.size();
  const io::FailpointKind kinds[] = {io::FailpointKind::kShortWrite,
                                     io::FailpointKind::kEnospc,
                                     io::FailpointKind::kCrashAfterBytes};
  const size_t thresholds[] = {0, 1, 13, len / 2, len - 1};
  for (io::FailpointKind kind : kinds) {
    for (size_t at : thresholds) {
      {
        io::ScopedFailpoint fp({kind, at});
        const Status st = train::WriteCheckpoint(path, other);
        ASSERT_FALSE(st.ok())
            << "kind=" << static_cast<int>(kind) << " at=" << at
            << " unexpectedly succeeded";
      }
      // The destination must still hold the previous checkpoint, byte for
      // byte, and must still parse to the same state.
      ASSERT_EQ(Slurp(path), good_bytes)
          << "kind=" << static_cast<int>(kind) << " at=" << at
          << " tore the destination";
      train::CheckpointState reread;
      ASSERT_TRUE(train::ReadCheckpoint(path, &reread).ok());
      ExpectStatesEqual(good_state, reread);
    }
  }
  // Once the failpoint is gone the same write goes through.
  ASSERT_TRUE(train::WriteCheckpoint(path, other).ok());
  train::CheckpointState reread;
  ASSERT_TRUE(train::ReadCheckpoint(path, &reread).ok());
  EXPECT_EQ(reread.epochs_run, 6);
  std::remove(path.c_str());
}

// --- trainer resume determinism ------------------------------------------

class CheckpointResumeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bkg_ = new datagen::GeneratedBkg(
        datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05)));
    encoders::FeatureBankConfig cfg;
    cfg.gin_pretrain_epochs = 0;
    bank_ = new encoders::FeatureBank(BuildFeatureBank(*bkg_, cfg));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete bkg_;
  }

  baselines::ModelContext Context() const {
    return {bkg_->dataset.num_entities(),
            bkg_->dataset.num_relations_with_inverses(), bank_,
            &bkg_->dataset.train, 11};
  }
  baselines::ZooOptions Options() const {
    baselines::ZooOptions zoo;
    zoo.dim = 16;
    zoo.conv.reshape_h = 4;
    zoo.conv.filters = 8;
    zoo.came.fusion_dim = 16;
    zoo.came.reshape_h = 4;
    zoo.came.conv_filters = 8;
    return zoo;
  }
  train::TrainConfig Config(int epochs) const {
    train::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 128;
    cfg.margin = 4.0f;
    cfg.negatives = 8;
    return cfg;
  }

  /// Trains `model_name` for 2N epochs straight, and separately for N
  /// epochs + checkpoint + resume into a fresh model/trainer + N more
  /// epochs; asserts the two end states are bitwise identical (params and
  /// per-epoch losses) and, at the end, that both files saved from the
  /// final state match byte for byte.
  void CheckResumeDeterminism(const std::string& model_name, int n_threads) {
    const int prev_threads = NumThreads();
    SetNumThreads(n_threads);
    const int kHalf = 2;
    const std::string path = TmpPath("resume_" + model_name +
                                     std::to_string(n_threads));

    // Straight run: 2N epochs, no interruption.
    auto straight_model = baselines::CreateModel(model_name, Context(),
                                                 Options());
    train::Trainer straight(straight_model.get(), bkg_->dataset,
                            Config(2 * kHalf));
    std::vector<float> straight_losses;
    straight.Train([&](const train::EpochStats& s) {
      straight_losses.push_back(s.loss);
    });

    // Interrupted run: N epochs, save, then resume in a *fresh* trainer
    // around a *fresh* (differently initialised) model.
    std::vector<float> resumed_losses;
    {
      auto model_a =
          baselines::CreateModel(model_name, Context(), Options());
      train::Trainer first_half(model_a.get(), bkg_->dataset, Config(kHalf));
      first_half.Train([&](const train::EpochStats& s) {
        resumed_losses.push_back(s.loss);
      });
      ASSERT_TRUE(first_half.SaveCheckpoint(path).ok());
    }
    auto resumed_model =
        baselines::CreateModel(model_name, Context(), Options());
    // Perturb the fresh model so the test cannot pass by accident: Resume
    // must overwrite everything.
    resumed_model->mutable_rng()->Normal();
    train::Trainer resumed(resumed_model.get(), bkg_->dataset,
                           Config(2 * kHalf));
    ASSERT_TRUE(resumed.Resume(path).ok());
    EXPECT_EQ(resumed.epochs_run(), kHalf);
    resumed.Train([&](const train::EpochStats& s) {
      resumed_losses.push_back(s.loss);
    });

    ASSERT_EQ(straight_losses.size(), resumed_losses.size());
    for (size_t i = 0; i < straight_losses.size(); ++i) {
      EXPECT_EQ(straight_losses[i], resumed_losses[i])
          << model_name << " loss diverged at epoch " << i + 1 << " with "
          << n_threads << " threads";
    }
    ExpectModelsBitwiseEqual(straight_model.get(), resumed_model.get());

    // Checkpoints of the two end states must also match byte for byte.
    const std::string pa = TmpPath("end_a"), pb = TmpPath("end_b");
    ASSERT_TRUE(straight.SaveCheckpoint(pa).ok());
    ASSERT_TRUE(resumed.SaveCheckpoint(pb).ok());
    EXPECT_EQ(Slurp(pa), Slurp(pb));
    std::remove(pa.c_str());
    std::remove(pb.c_str());
    std::remove(path.c_str());
    SetNumThreads(prev_threads);
  }

  static datagen::GeneratedBkg* bkg_;
  static encoders::FeatureBank* bank_;
};

datagen::GeneratedBkg* CheckpointResumeFixture::bkg_ = nullptr;
encoders::FeatureBank* CheckpointResumeFixture::bank_ = nullptr;

// ConvE exercises the 1-to-N regime plus the model's dropout rng stream;
// TransE exercises negative sampling (the sampler rng stream). Both run
// single- and multi-threaded: static partitioning makes the result
// thread-count invariant, so bitwise resume must hold at any width.
TEST_F(CheckpointResumeFixture, ConvEOneToNResumesBitwiseAt1Thread) {
  CheckResumeDeterminism("ConvE", 1);
}
TEST_F(CheckpointResumeFixture, ConvEOneToNResumesBitwiseAt4Threads) {
  CheckResumeDeterminism("ConvE", 4);
}
TEST_F(CheckpointResumeFixture, TransENegSamplingResumesBitwiseAt1Thread) {
  CheckResumeDeterminism("TransE", 1);
}
TEST_F(CheckpointResumeFixture, TransENegSamplingResumesBitwiseAt4Threads) {
  CheckResumeDeterminism("TransE", 4);
}

TEST_F(CheckpointResumeFixture, BestValidationResumeMatchesStraightRun) {
  const std::string path = TmpPath("bestval");
  eval::Evaluator evaluator(bkg_->dataset);
  constexpr int kEvalEvery = 2;
  constexpr int64_t kValidSample = 50;

  // Straight run: 4 epochs with validation every 2.
  auto straight_model = baselines::CreateModel("DistMult", Context(),
                                               Options());
  train::TrainConfig cfg4 = Config(4);
  cfg4.margin = 0.0f;
  train::Trainer straight(straight_model.get(), bkg_->dataset, cfg4);
  const eval::Metrics straight_best = straight.TrainWithBestValidation(
      evaluator, kEvalEvery, kValidSample);

  // Interrupted run: the config-driven checkpoint captures the state after
  // epoch 2 (including the best-so-far snapshot), *before* the
  // end-of-training restore puts the best parameters back in the model.
  {
    auto model_a = baselines::CreateModel("DistMult", Context(), Options());
    train::TrainConfig cfg2 = Config(2);
    cfg2.margin = 0.0f;
    cfg2.checkpoint_path = path;
    cfg2.checkpoint_every = 2;
    train::Trainer first_half(model_a.get(), bkg_->dataset, cfg2);
    first_half.TrainWithBestValidation(evaluator, kEvalEvery, kValidSample);
  }
  auto resumed_model =
      baselines::CreateModel("DistMult", Context(), Options());
  train::Trainer resumed(resumed_model.get(), bkg_->dataset, cfg4);
  ASSERT_TRUE(resumed.Resume(path).ok());
  EXPECT_EQ(resumed.epochs_run(), 2);
  const eval::Metrics resumed_best = resumed.TrainWithBestValidation(
      evaluator, kEvalEvery, kValidSample);

  EXPECT_EQ(straight_best.rank_sum, resumed_best.rank_sum);
  EXPECT_EQ(straight_best.reciprocal_sum, resumed_best.reciprocal_sum);
  EXPECT_EQ(straight_best.hits1, resumed_best.hits1);
  EXPECT_EQ(straight_best.hits3, resumed_best.hits3);
  EXPECT_EQ(straight_best.hits10, resumed_best.hits10);
  EXPECT_EQ(straight_best.count, resumed_best.count);
  // Both runs end holding their best-validation snapshot.
  ExpectModelsBitwiseEqual(straight_model.get(), resumed_model.get());
  std::remove(path.c_str());
}

TEST_F(CheckpointResumeFixture, ResumeRejectsCheckpointFromDifferentModel) {
  const std::string path = TmpPath("wrongmodel");
  {
    auto transe = baselines::CreateModel("TransE", Context(), Options());
    train::Trainer t(transe.get(), bkg_->dataset, Config(1));
    t.RunEpoch();
    ASSERT_TRUE(t.SaveCheckpoint(path).ok());
  }
  auto conve = baselines::CreateModel("ConvE", Context(), Options());
  train::Trainer t(conve.get(), bkg_->dataset, Config(2));
  const auto before = conve->SnapshotParameters();
  EXPECT_FALSE(t.Resume(path).ok());
  // The failed resume must leave the trainer fully usable and untouched.
  EXPECT_EQ(t.epochs_run(), 0);
  const auto after = conve->SnapshotParameters();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    for (int64_t j = 0; j < before[i].numel(); ++j) {
      ASSERT_EQ(before[i].data()[j], after[i].data()[j]);
    }
  }
  EXPECT_GT(t.RunEpoch(), 0.0f);
  std::remove(path.c_str());
}

TEST_F(CheckpointResumeFixture, FailedPeriodicSaveDoesNotStopTraining) {
  const std::string path = "/no/such/dir/came_ckpt.bin";
  auto model = baselines::CreateModel("DistMult", Context(), Options());
  train::TrainConfig cfg = Config(2);
  cfg.checkpoint_path = path;
  train::Trainer trainer(model.get(), bkg_->dataset, cfg);
  int epochs_seen = 0;
  trainer.Train([&](const train::EpochStats&) { ++epochs_seen; });
  EXPECT_EQ(epochs_seen, 2);
  EXPECT_EQ(trainer.epochs_run(), 2);
}

}  // namespace
}  // namespace came
