// End-to-end guarantees of the tensor storage pool: recycling buffers must
// never change a single bit of training, and a warmed-up trainer must stop
// touching the heap allocator entirely.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "common/io.h"
#include "common/parallel_for.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "tensor/storage_pool.h"
#include "train/trainer.h"

namespace came {
namespace {

std::string TmpPath(const std::string& stem) {
  return "/tmp/came_pool_train_" + stem + ".bin";
}

std::string Slurp(const std::string& path) {
  std::string out;
  EXPECT_TRUE(io::ReadFile(path, &out).ok()) << path;
  return out;
}

void ExpectModelsBitwiseEqual(baselines::KgcModel* a, baselines::KgcModel* b,
                              const std::string& label) {
  auto na = a->NamedParameters();
  auto nb = b->NamedParameters();
  ASSERT_EQ(na.size(), nb.size());
  for (size_t i = 0; i < na.size(); ++i) {
    ASSERT_EQ(na[i].first, nb[i].first);
    const float* pa = na[i].second.value().data();
    const float* pb = nb[i].second.value().data();
    for (int64_t j = 0; j < na[i].second.numel(); ++j) {
      ASSERT_EQ(pa[j], pb[j])
          << label << ": " << na[i].first << "[" << j << "] diverged";
    }
  }
}

struct RunResult {
  std::vector<float> losses;
  std::string checkpoint_bytes;
  std::unique_ptr<baselines::KgcModel> model;
};

class PoolTrainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bkg_ = new datagen::GeneratedBkg(
        datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05)));
    encoders::FeatureBankConfig cfg;
    cfg.gin_pretrain_epochs = 0;
    bank_ = new encoders::FeatureBank(BuildFeatureBank(*bkg_, cfg));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete bkg_;
  }

  void SetUp() override {
    saved_mode_ = tensor::pool::ActiveMode();
    saved_threads_ = NumThreads();
  }
  void TearDown() override {
    tensor::pool::Clear();
    tensor::pool::SetMode(saved_mode_);
    SetNumThreads(saved_threads_);
  }

  baselines::ModelContext Context() const {
    return {bkg_->dataset.num_entities(),
            bkg_->dataset.num_relations_with_inverses(), bank_,
            &bkg_->dataset.train, 11};
  }
  baselines::ZooOptions Options() const {
    baselines::ZooOptions zoo;
    zoo.dim = 16;
    zoo.conv.reshape_h = 4;
    zoo.conv.filters = 8;
    zoo.came.fusion_dim = 16;
    zoo.came.reshape_h = 4;
    zoo.came.conv_filters = 8;
    return zoo;
  }
  train::TrainConfig Config(int epochs) const {
    train::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 128;
    cfg.margin = 4.0f;
    cfg.negatives = 8;
    return cfg;
  }

  /// Trains `model_name` from its seeded init under the given pool mode and
  /// thread count, returning the per-epoch losses, the end-state checkpoint
  /// bytes, and the trained model for parameter comparison.
  RunResult RunTraining(const std::string& model_name, tensor::pool::Mode mode,
                        int n_threads, int epochs) {
    tensor::pool::Clear();
    tensor::pool::SetMode(mode);
    SetNumThreads(n_threads);

    RunResult r;
    r.model = baselines::CreateModel(model_name, Context(), Options());
    train::Trainer trainer(r.model.get(), bkg_->dataset, Config(epochs));
    trainer.Train(
        [&](const train::EpochStats& s) { r.losses.push_back(s.loss); });

    const std::string path =
        TmpPath(model_name + "_" + tensor::pool::ModeName(mode) + "_" +
                std::to_string(n_threads));
    EXPECT_TRUE(trainer.SaveCheckpoint(path).ok());
    r.checkpoint_bytes = Slurp(path);
    std::remove(path.c_str());
    return r;
  }

  /// The pool changes where buffers live, never what arithmetic runs on
  /// them, so training with recycling (and with scrub poisoning) must match
  /// the fresh-allocation baseline bit for bit: losses, every parameter,
  /// and the serialized checkpoint.
  void CheckBitwiseParity(const std::string& model_name, int n_threads) {
    const int kEpochs = 2;
    RunResult off =
        RunTraining(model_name, tensor::pool::Mode::kOff, n_threads, kEpochs);
    RunResult on =
        RunTraining(model_name, tensor::pool::Mode::kOn, n_threads, kEpochs);
    RunResult scrub = RunTraining(model_name, tensor::pool::Mode::kScrub,
                                  n_threads, kEpochs);

    for (const RunResult* other : {&on, &scrub}) {
      ASSERT_EQ(off.losses.size(), other->losses.size());
      for (size_t i = 0; i < off.losses.size(); ++i) {
        EXPECT_EQ(off.losses[i], other->losses[i])
            << model_name << " loss diverged at epoch " << i + 1 << " with "
            << n_threads << " threads";
      }
      EXPECT_EQ(off.checkpoint_bytes, other->checkpoint_bytes)
          << model_name << " checkpoint bytes diverged with " << n_threads
          << " threads";
    }
    ExpectModelsBitwiseEqual(off.model.get(), on.model.get(),
                             model_name + " off-vs-on");
    ExpectModelsBitwiseEqual(off.model.get(), scrub.model.get(),
                             model_name + " off-vs-scrub");
  }

  static datagen::GeneratedBkg* bkg_;
  static encoders::FeatureBank* bank_;

 private:
  tensor::pool::Mode saved_mode_;
  int saved_threads_;
};

datagen::GeneratedBkg* PoolTrainFixture::bkg_ = nullptr;
encoders::FeatureBank* PoolTrainFixture::bank_ = nullptr;

// ConvE covers the 1-to-N regime (dense label tensors, conv scratch,
// GEMM packing leases); TransE covers negative sampling (many small
// per-batch gather/score tensors). Both at 1 and 4 threads, since the
// thread caches and the shared overflow pool take different paths.
TEST_F(PoolTrainFixture, ConvEOneToNBitwiseParityAt1Thread) {
  CheckBitwiseParity("ConvE", 1);
}
TEST_F(PoolTrainFixture, ConvEOneToNBitwiseParityAt4Threads) {
  CheckBitwiseParity("ConvE", 4);
}
TEST_F(PoolTrainFixture, TransENegSamplingBitwiseParityAt1Thread) {
  CheckBitwiseParity("TransE", 1);
}
TEST_F(PoolTrainFixture, TransENegSamplingBitwiseParityAt4Threads) {
  CheckBitwiseParity("TransE", 4);
}

// After a warm-up epoch every size class the step needs is populated, so a
// steady-state epoch must run without touching the heap allocator at all.
// The same epoch with the pool off is the denominator: thousands of
// allocations, all of which the pool absorbs.
TEST_F(PoolTrainFixture, WarmedUpTrainingEpochStopsAllocating) {
  SetNumThreads(2);

  tensor::pool::Clear();
  tensor::pool::SetMode(tensor::pool::Mode::kOff);
  int64_t off_allocs;
  {
    auto model = baselines::CreateModel("ConvE", Context(), Options());
    train::Trainer trainer(model.get(), bkg_->dataset, Config(3));
    trainer.RunEpoch();
    const int64_t h0 = tensor::pool::HeapAllocCount();
    trainer.RunEpoch();
    off_allocs = tensor::pool::HeapAllocCount() - h0;
  }
  ASSERT_GT(off_allocs, 1000) << "baseline epoch should be alloc-heavy";

  tensor::pool::Clear();
  tensor::pool::SetMode(tensor::pool::Mode::kOn);
  auto model = baselines::CreateModel("ConvE", Context(), Options());
  train::Trainer trainer(model.get(), bkg_->dataset, Config(3));
  trainer.RunEpoch();
  trainer.RunEpoch();  // second warm-up flushes any first-epoch cold paths
  const int64_t h0 = tensor::pool::HeapAllocCount();
  const int64_t a0 = tensor::pool::AcquireCount();
  trainer.RunEpoch();
  const int64_t steady_allocs = tensor::pool::HeapAllocCount() - h0;
  const int64_t acquires = tensor::pool::AcquireCount() - a0;

  // The epoch still acquires thousands of buffers -- they just all come
  // from the pool. Allow a whisker of slack for one-off growth.
  EXPECT_GT(acquires, 1000);
  EXPECT_LE(steady_allocs, 8)
      << "steady-state epoch hit the heap " << steady_allocs
      << " times (pool-off baseline: " << off_allocs << ")";
  EXPECT_LE(steady_allocs * 100, off_allocs)
      << "expected >=99% allocation reduction";
}

}  // namespace
}  // namespace came
