#include <gtest/gtest.h>

#include <cmath>

#include "baselines/model_zoo.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "train/convergence.h"
#include "train/grid_search.h"
#include "train/negative_sampler.h"
#include "train/trainer.h"

namespace came {
namespace {

// --- metrics -----------------------------------------------------------

TEST(MetricsTest, SingleRank) {
  eval::Metrics m;
  m.AddRank(1.0);
  EXPECT_EQ(m.Mr(), 1.0);
  EXPECT_EQ(m.Mrr(), 100.0);
  EXPECT_EQ(m.Hits1(), 100.0);
  EXPECT_EQ(m.Hits10(), 100.0);
}

TEST(MetricsTest, MixedRanks) {
  eval::Metrics m;
  m.AddRank(1.0);
  m.AddRank(4.0);
  m.AddRank(20.0);
  EXPECT_NEAR(m.Mr(), 25.0 / 3, 1e-9);
  EXPECT_NEAR(m.Mrr(), 100.0 * (1.0 + 0.25 + 0.05) / 3, 1e-6);
  EXPECT_NEAR(m.Hits1(), 100.0 / 3, 1e-6);
  EXPECT_NEAR(m.Hits3(), 100.0 / 3, 1e-6);
  EXPECT_NEAR(m.Hits10(), 200.0 / 3, 1e-6);
}

TEST(MetricsTest, MergeEqualsCombined) {
  eval::Metrics a;
  eval::Metrics b;
  eval::Metrics all;
  a.AddRank(2.0);
  b.AddRank(7.0);
  all.AddRank(2.0);
  all.AddRank(7.0);
  a.Merge(b);
  EXPECT_EQ(a.count, all.count);
  EXPECT_EQ(a.Mrr(), all.Mrr());
}

TEST(MetricsTest, RejectsInvalidRank) {
  eval::Metrics m;
  EXPECT_DEATH(m.AddRank(0.5), "CHECK");
}

// --- negative sampler --------------------------------------------------

TEST(NegativeSamplerTest, AvoidsKnownTails) {
  kg::FilterIndex filter(5, 1);
  // (0, 0) connects to everything except entity 4.
  filter.AddTriples({{0, 0, 0}, {0, 0, 1}, {0, 0, 2}, {0, 0, 3}});
  train::NegativeSampler sampler(&filter, 5, 3);
  std::vector<int64_t> negs;
  sampler.AppendSamples(0, 0, 50, &negs);
  int escaped = 0;
  for (int64_t n : negs) escaped += n != 4;
  // With 16 retries per draw, nearly every sample should be entity 4.
  EXPECT_LT(escaped, 5);
}

TEST(NegativeSamplerTest, UnfilteredCoversRange) {
  train::NegativeSampler sampler(nullptr, 10, 5);
  std::vector<int64_t> negs;
  sampler.AppendSamples(0, 0, 200, &negs);
  EXPECT_EQ(negs.size(), 200u);
  for (int64_t n : negs) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 10);
  }
}

TEST(NegativeSamplerTest, AppendPreservesExistingContents) {
  // The append contract is explicit: accumulating a whole batch into one
  // vector must never clobber earlier entries.
  train::NegativeSampler sampler(nullptr, 10, 5);
  std::vector<int64_t> negs = {101, 102, 103};
  sampler.AppendSamples(0, 0, 5, &negs);
  ASSERT_EQ(negs.size(), 8u);
  EXPECT_EQ(negs[0], 101);
  EXPECT_EQ(negs[1], 102);
  EXPECT_EQ(negs[2], 103);
  for (size_t i = 3; i < negs.size(); ++i) {
    EXPECT_GE(negs[i], 0);
    EXPECT_LT(negs[i], 10);
  }
}

TEST(NegativeSamplerTest, HubEntityFallbackStaysBoundedAndInRange) {
  kg::FilterIndex filter(4, 1);
  // (0, 0) connects to every entity, so rejection sampling can never
  // succeed and each draw must take the 16-retry fallback.
  filter.AddTriples({{0, 0, 0}, {0, 0, 1}, {0, 0, 2}, {0, 0, 3}});
  train::NegativeSampler sampler(&filter, 4, 9);
  std::vector<int64_t> negs;
  sampler.AppendSamples(0, 0, 64, &negs);
  ASSERT_EQ(negs.size(), 64u);
  for (int64_t n : negs) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 4);
    // Every sample is necessarily a known tail: the fallback keeps the
    // last draw instead of looping forever.
    EXPECT_TRUE(filter.Contains(0, 0, n));
  }
}

// --- trainer & evaluator end-to-end -------------------------------------

class TrainEvalFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bkg_ = new datagen::GeneratedBkg(
        datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05)));
    encoders::FeatureBankConfig cfg;
    cfg.gin_pretrain_epochs = 0;
    bank_ = new encoders::FeatureBank(BuildFeatureBank(*bkg_, cfg));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete bkg_;
  }

  baselines::ModelContext Context() const {
    return {bkg_->dataset.num_entities(),
            bkg_->dataset.num_relations_with_inverses(), bank_,
            &bkg_->dataset.train, 11};
  }
  baselines::ZooOptions Options() const {
    baselines::ZooOptions zoo;
    zoo.dim = 16;
    zoo.conv.reshape_h = 4;
    zoo.conv.filters = 8;
    zoo.came.fusion_dim = 16;
    zoo.came.reshape_h = 4;
    zoo.came.conv_filters = 8;
    return zoo;
  }

  static datagen::GeneratedBkg* bkg_;
  static encoders::FeatureBank* bank_;
};

datagen::GeneratedBkg* TrainEvalFixture::bkg_ = nullptr;
encoders::FeatureBank* TrainEvalFixture::bank_ = nullptr;

TEST_F(TrainEvalFixture, OneToNTrainingReducesLoss) {
  auto model = baselines::CreateModel("ConvE", Context(), Options());
  train::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 128;
  train::Trainer trainer(model.get(), bkg_->dataset, cfg);
  const float first = trainer.RunEpoch();
  float last = first;
  for (int i = 1; i < cfg.epochs; ++i) last = trainer.RunEpoch();
  EXPECT_LT(last, first);
}

TEST_F(TrainEvalFixture, NegativeSamplingTrainingReducesLoss) {
  auto model = baselines::CreateModel("TransE", Context(), Options());
  train::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.margin = 4.0f;
  train::Trainer trainer(model.get(), bkg_->dataset, cfg);
  const float first = trainer.RunEpoch();
  float last = first;
  for (int i = 1; i < cfg.epochs; ++i) last = trainer.RunEpoch();
  EXPECT_LT(last, first);
}

TEST_F(TrainEvalFixture, SelfAdversarialTrainingReducesLoss) {
  auto model = baselines::CreateModel("a-RotatE", Context(), Options());
  train::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.margin = 6.0f;
  train::Trainer trainer(model.get(), bkg_->dataset, cfg);
  const float first = trainer.RunEpoch();
  float last = first;
  for (int i = 1; i < cfg.epochs; ++i) last = trainer.RunEpoch();
  EXPECT_LT(last, first);
}

TEST_F(TrainEvalFixture, CallbackFiresPerEpoch) {
  auto model = baselines::CreateModel("DistMult", Context(), Options());
  train::TrainConfig cfg;
  cfg.epochs = 3;
  train::Trainer trainer(model.get(), bkg_->dataset, cfg);
  int calls = 0;
  trainer.Train([&](const train::EpochStats& s) {
    ++calls;
    EXPECT_EQ(s.epoch, calls);
    EXPECT_GE(s.seconds_elapsed, 0.0);
  });
  EXPECT_EQ(calls, 3);
}

TEST_F(TrainEvalFixture, TrainedModelBeatsUntrainedOnMrr) {
  auto trained = baselines::CreateModel("DistMult", Context(), Options());
  auto untrained = baselines::CreateModel("DistMult", Context(), Options());
  train::TrainConfig cfg;
  cfg.epochs = 30;
  cfg.margin = 0.0f;
  cfg.negatives = 16;
  train::Trainer trainer(trained.get(), bkg_->dataset, cfg);
  trainer.Train();
  eval::Evaluator evaluator(bkg_->dataset);
  eval::EvalConfig ec;
  ec.max_triples = 150;
  const double mrr_trained =
      evaluator.Evaluate(trained.get(), bkg_->dataset.test, ec).Mrr();
  const double mrr_untrained =
      evaluator.Evaluate(untrained.get(), bkg_->dataset.test, ec).Mrr();
  EXPECT_GT(mrr_trained, mrr_untrained);
}

TEST_F(TrainEvalFixture, EvaluatorRestoresTrainingMode) {
  auto model = baselines::CreateModel("ConvE", Context(), Options());
  model->SetTraining(true);
  eval::Evaluator evaluator(bkg_->dataset);
  eval::EvalConfig ec;
  ec.max_triples = 10;
  evaluator.Evaluate(model.get(), bkg_->dataset.test, ec);
  EXPECT_TRUE(model->training());
}

TEST_F(TrainEvalFixture, MaxTriplesLimitsWork) {
  auto model = baselines::CreateModel("TransE", Context(), Options());
  eval::Evaluator evaluator(bkg_->dataset);
  eval::EvalConfig ec;
  ec.max_triples = 25;
  auto m = evaluator.Evaluate(model.get(), bkg_->dataset.test, ec);
  EXPECT_EQ(m.count, 50);  // both directions
  ec.both_directions = false;
  m = evaluator.Evaluate(model.get(), bkg_->dataset.test, ec);
  EXPECT_EQ(m.count, 25);
}

TEST_F(TrainEvalFixture, ConvergenceCurveIsRecorded) {
  auto model = baselines::CreateModel("DistMult", Context(), Options());
  train::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.margin = 0.0f;
  eval::Evaluator evaluator(bkg_->dataset);
  auto curve = train::TrainWithConvergence(
      model.get(), bkg_->dataset, cfg, evaluator, bkg_->dataset.test,
      /*eval_sample=*/50, /*eval_every=*/2);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_EQ(curve[0].epoch, 2);
  EXPECT_EQ(curve[1].epoch, 4);
  EXPECT_GT(curve[1].seconds, curve[0].seconds);
  EXPECT_GT(curve[0].mrr, 0.0);
}

TEST_F(TrainEvalFixture, BestValidationCheckpointIsKept) {
  auto model = baselines::CreateModel("DistMult", Context(), Options());
  train::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.margin = 0.0f;
  eval::Evaluator evaluator(bkg_->dataset);
  train::Trainer trainer(model.get(), bkg_->dataset, cfg);
  const eval::Metrics best =
      trainer.TrainWithBestValidation(evaluator, /*eval_every=*/2,
                                      /*valid_sample=*/60);
  // The restored parameters must reproduce the reported best Hits@10.
  eval::EvalConfig ec;
  ec.max_triples = 60;
  const eval::Metrics after =
      evaluator.Evaluate(model.get(), bkg_->dataset.valid, ec);
  EXPECT_NEAR(after.Hits10(), best.Hits10(), 1e-6);
}

// Scripted model for the checkpoint-selection regression test below. Its
// validation landscape is controlled per evaluation round: round 1 puts
// every target at rank 4 (MRR 25, Hits@10 100), round 2 at rank 2 (MRR
// 50, Hits@10 100). MRR and the old Hits@10-based criterion disagree:
// Hits@10 sees no improvement in round 2 and would keep round 1's
// snapshot, while the paper's MRR criterion must keep round 2's. The
// `marker` parameter records the round a snapshot was taken in.
class ScriptedEvalModel : public baselines::KgcModel {
 public:
  ScriptedEvalModel(const baselines::ModelContext& ctx,
                    const kg::FilterIndex* filter)
      : KgcModel(ctx), filter_(filter) {
    marker_ = RegisterParameter("marker", tensor::Tensor::Zeros({1}));
  }
  std::string Name() const override { return "ScriptedEval"; }
  baselines::TrainingRegime regime() const override {
    return baselines::TrainingRegime::kOneToN;
  }

  float marker() const { return marker_.value().data()[0]; }

  ag::Var ScoreTriples(const std::vector<int64_t>&,
                       const std::vector<int64_t>&,
                       const std::vector<int64_t>& t) override {
    return ag::Const(
        tensor::Tensor::Zeros({static_cast<int64_t>(t.size())}));
  }

  ag::Var ScoreAllTails(const std::vector<int64_t>& h,
                        const std::vector<int64_t>& r) override {
    const int64_t b = static_cast<int64_t>(h.size());
    if (training()) {
      // One training batch per epoch (the test uses a huge batch size);
      // counting them tells us which evaluation round comes next.
      ++epochs_seen_;
      // Differentiable zeros keep the 1-to-N training loop functional.
      return ag::Mul(marker_,
                     ag::Const(tensor::Tensor::Zeros({b, num_entities()})));
    }
    marker_.mutable_value().data()[0] = static_cast<float>(epochs_seen_);
    // Rank of every target = 1 + boosted: true tails score 10, `boosted`
    // non-true entities score 20, the rest 0 (other true tails are
    // filtered out of the ranking).
    const int64_t boosted = epochs_seen_ <= 1 ? 3 : 1;
    tensor::Tensor scores({b, num_entities()});
    for (int64_t i = 0; i < b; ++i) {
      float* row = scores.data() + i * num_entities();
      for (int64_t t : filter_->Tails(h[i], r[i])) row[t] = 10.0f;
      int64_t need = boosted;
      for (int64_t t = num_entities() - 1; t >= 0 && need > 0; --t) {
        if (row[t] == 0.0f) {
          row[t] = 20.0f;
          --need;
        }
      }
    }
    return ag::Const(scores);
  }

 private:
  const kg::FilterIndex* filter_;
  ag::Var marker_;
  int epochs_seen_ = 0;
};

TEST_F(TrainEvalFixture, BestValidationSelectsOnMrrNotHits10) {
  eval::Evaluator evaluator(bkg_->dataset);
  ScriptedEvalModel model(Context(), &evaluator.filter());
  train::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 1 << 30;  // whole epoch in one batch
  train::Trainer trainer(&model, bkg_->dataset, cfg);
  const eval::Metrics best = trainer.TrainWithBestValidation(
      evaluator, /*eval_every=*/1, /*valid_sample=*/40);
  // Round 2 (rank 2 everywhere) wins on MRR even though its Hits@10 ties
  // round 1; the restored snapshot must come from round 2.
  EXPECT_NEAR(best.Mrr(), 50.0, 1e-6);
  EXPECT_NEAR(best.Hits10(), 100.0, 1e-6);
  EXPECT_EQ(best.hits1, 0);
  EXPECT_FLOAT_EQ(model.marker(), 2.0f);
}

TEST_F(TrainEvalFixture, GridSearchPicksAMarginAndReturnsModel) {
  eval::Evaluator evaluator(bkg_->dataset);
  auto factory = [&]() {
    return baselines::CreateModel("TransE", Context(), Options());
  };
  train::TrainConfig base;
  base.epochs = 4;
  auto result = train::GridSearch(
      factory, bkg_->dataset, evaluator,
      train::MarginGrid(base, {0.5f, 2.0f, 8.0f}), /*valid_sample=*/60);
  ASSERT_EQ(result.trials.size(), 3u);
  ASSERT_NE(result.best_model, nullptr);
  // Best trial must be at least as good as every trial.
  for (const auto& [cfg, metrics] : result.trials) {
    EXPECT_GE(result.best_valid.Hits10(), metrics.Hits10());
  }
  // The returned model is usable for scoring.
  ag::NoGradGuard guard;
  EXPECT_EQ(result.best_model->ScoreAllTails({0}, {0}).dim(1),
            bkg_->dataset.num_entities());
}

// Oracle test: a model whose scores are perfect must have MRR 100 under
// the filtered protocol.
class OracleModel : public baselines::KgcModel {
 public:
  OracleModel(const baselines::ModelContext& ctx, const kg::FilterIndex* f)
      : KgcModel(ctx), filter_(f) {}
  std::string Name() const override { return "Oracle"; }
  baselines::TrainingRegime regime() const override {
    return baselines::TrainingRegime::kOneToN;
  }
  ag::Var ScoreTriples(const std::vector<int64_t>&,
                       const std::vector<int64_t>&,
                       const std::vector<int64_t>& tails) override {
    return ag::Const(tensor::Tensor::Zeros(
        {static_cast<int64_t>(tails.size())}));
  }
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override {
    tensor::Tensor scores({static_cast<int64_t>(heads.size()),
                           num_entities()});
    for (size_t i = 0; i < heads.size(); ++i) {
      for (int64_t t : filter_->Tails(heads[i], rels[i])) {
        scores.data()[static_cast<int64_t>(i) * num_entities() + t] = 10.0f;
      }
    }
    return ag::Const(scores);
  }

 private:
  const kg::FilterIndex* filter_;
};

TEST_F(TrainEvalFixture, OracleScoresPerfectMrrUnderFiltering) {
  eval::Evaluator evaluator(bkg_->dataset);
  OracleModel oracle(Context(), &evaluator.filter());
  eval::EvalConfig ec;
  ec.max_triples = 100;
  auto m = evaluator.Evaluate(&oracle, bkg_->dataset.test, ec);
  // All true tails score 10, everything else 0; filtering removes the
  // other true tails, so every target ranks 1.
  EXPECT_NEAR(m.Mrr(), 100.0, 1e-6);
  EXPECT_NEAR(m.Hits1(), 100.0, 1e-6);
}

TEST_F(TrainEvalFixture, ConstantScorerRanksMidTable) {
  // All-equal scores must produce rank ~ (N+1)/2, not rank 1.
  auto model = baselines::CreateModel("TransE", Context(), Options());
  struct Constant : baselines::KgcModel {
    explicit Constant(const baselines::ModelContext& ctx) : KgcModel(ctx) {}
    std::string Name() const override { return "Const"; }
    baselines::TrainingRegime regime() const override {
      return baselines::TrainingRegime::kOneToN;
    }
    ag::Var ScoreTriples(const std::vector<int64_t>&,
                         const std::vector<int64_t>&,
                         const std::vector<int64_t>& t) override {
      return ag::Const(
          tensor::Tensor::Zeros({static_cast<int64_t>(t.size())}));
    }
    ag::Var ScoreAllTails(const std::vector<int64_t>& h,
                          const std::vector<int64_t>&) override {
      return ag::Const(tensor::Tensor::Zeros(
          {static_cast<int64_t>(h.size()), num_entities()}));
    }
  } constant(Context());
  eval::Evaluator evaluator(bkg_->dataset);
  eval::EvalConfig ec;
  ec.max_triples = 50;
  auto m = evaluator.Evaluate(&constant, bkg_->dataset.test, ec);
  const double n = static_cast<double>(bkg_->dataset.num_entities());
  EXPECT_GT(m.Mr(), n * 0.3);
  EXPECT_LT(m.Mr(), n * 0.7);
}

}  // namespace
}  // namespace came
