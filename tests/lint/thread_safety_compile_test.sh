#!/bin/sh
# Negative-compile harness for the clang Thread Safety annotations.
#
# Verifies the analysis actually has teeth: the positive fixture must
# compile cleanly under -Wthread-safety -Werror=thread-safety, and each
# negative fixture (an unguarded CAME_GUARDED_BY access; a CAME_REQUIRES
# call without the lock) must FAIL to compile with a thread-safety
# diagnostic. A silent pass on the negatives would mean the annotations
# are wired up wrong (e.g. macros expanding to nothing under clang).
#
# Usage: thread_safety_compile_test.sh <src-dir> [clang++-path]
# Exit:  0 all checks hold; 77 clang unavailable (ctest SKIP_RETURN_CODE);
#        1 a check failed.
set -u

SRC="${1:?usage: thread_safety_compile_test.sh <src-dir> [clang++]}"
CLANG="${2:-clang++}"
FIXTURES="$(dirname "$0")/thread_safety_fixtures"

case "$CLANG" in
  *-NOTFOUND|"") CLANG=clang++ ;;
esac
if ! command -v "$CLANG" >/dev/null 2>&1; then
  echo "SKIP: no clang++ on PATH; thread-safety analysis is clang-only"
  exit 77
fi

FLAGS="-std=c++20 -fsyntax-only -I$SRC -Wthread-safety -Werror=thread-safety"
fail=0

# Positive control: annotated-and-correct code must be accepted.
if ! err=$("$CLANG" $FLAGS "$FIXTURES/positive_guarded.cc" 2>&1); then
  echo "FAIL: positive_guarded.cc did not compile under -Wthread-safety:"
  echo "$err"
  fail=1
else
  echo "ok: positive_guarded.cc accepted"
fi

# Negatives: each defect class must be rejected, and rejected for the
# right reason (a thread-safety diagnostic, not some unrelated error).
for f in negative_unguarded_access.cc negative_missing_lock_call.cc; do
  if err=$("$CLANG" $FLAGS "$FIXTURES/$f" 2>&1); then
    echo "FAIL: $f compiled but must be rejected by -Wthread-safety"
    fail=1
  elif ! printf '%s' "$err" | grep -q 'thread-safety'; then
    echo "FAIL: $f was rejected, but not by a thread-safety diagnostic:"
    echo "$err"
    fail=1
  else
    echo "ok: $f rejected with a thread-safety diagnostic"
  fi
done

exit $fail
