// Negative fixture: calls a CAME_REQUIRES(mu_) function without holding
// mu_. clang -Wthread-safety -Werror=thread-safety MUST reject this
// translation unit; the harness fails if it compiles.
#include "common/mutex.h"

namespace {

class Account {
 public:
  void DepositLocked(int amount) CAME_REQUIRES(mu_) { balance_ += amount; }

  // Defect: caller does not acquire mu_ before the REQUIRES call.
  void Deposit(int amount) { DepositLocked(amount); }

 private:
  came::Mutex mu_;
  int balance_ CAME_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  return 0;
}
