// Positive control: correctly annotated code that must compile cleanly
// under clang -Wthread-safety -Werror=thread-safety. If this file stops
// compiling, the harness (not the analysis) is broken.
#include "common/mutex.h"

namespace {

class Account {
 public:
  void Deposit(int amount) CAME_EXCLUDES(mu_) {
    came::MutexLock lock(&mu_);
    balance_ += amount;
  }

  int Balance() CAME_EXCLUDES(mu_) {
    came::MutexLock lock(&mu_);
    return balance_;
  }

  void DepositLocked(int amount) CAME_REQUIRES(mu_) { balance_ += amount; }

  void DepositTwice(int amount) CAME_EXCLUDES(mu_) {
    came::MutexLock lock(&mu_);
    DepositLocked(amount);
    DepositLocked(amount);
  }

  void WaitUntilFunded() CAME_EXCLUDES(mu_) {
    came::MutexLock lock(&mu_);
    while (balance_ == 0) cv_.Wait(&mu_);
  }

 private:
  came::Mutex mu_;
  came::CondVar cv_;
  int balance_ CAME_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  a.DepositTwice(2);
  return a.Balance() == 5 ? 0 : 1;
}
