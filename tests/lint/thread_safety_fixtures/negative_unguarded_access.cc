// Negative fixture: reads/writes a CAME_GUARDED_BY member without holding
// its mutex. clang -Wthread-safety -Werror=thread-safety MUST reject this
// translation unit; the harness fails if it compiles.
#include "common/mutex.h"

namespace {

class Account {
 public:
  // Defect: no lock taken, balance_ is guarded by mu_.
  void Deposit(int amount) { balance_ += amount; }

 private:
  came::Mutex mu_;
  int balance_ CAME_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  return 0;
}
