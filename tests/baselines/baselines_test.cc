#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baselines/model_zoo.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "tensor/tensor_ops.h"

namespace came::baselines {
namespace {

// One small shared fixture: a generated BKG + feature bank + context.
class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bkg_ = new datagen::GeneratedBkg(
        datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05)));
    encoders::FeatureBankConfig cfg;
    cfg.gin_pretrain_epochs = 0;
    bank_ = new encoders::FeatureBank(
        encoders::BuildFeatureBank(*bkg_, cfg));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete bkg_;
    bank_ = nullptr;
    bkg_ = nullptr;
  }

  ModelContext Context() const {
    ModelContext ctx;
    ctx.num_entities = bkg_->dataset.num_entities();
    ctx.num_relations = bkg_->dataset.num_relations_with_inverses();
    ctx.features = bank_;
    ctx.train_triples = &bkg_->dataset.train;
    ctx.seed = 7;
    return ctx;
  }

  ZooOptions Options() const {
    ZooOptions zoo;
    zoo.dim = 16;
    zoo.conv.reshape_h = 4;
    zoo.conv.filters = 8;
    zoo.came.fusion_dim = 16;
    zoo.came.reshape_h = 4;
    zoo.came.conv_filters = 8;
    return zoo;
  }

  static datagen::GeneratedBkg* bkg_;
  static encoders::FeatureBank* bank_;
};

datagen::GeneratedBkg* BaselineFixture::bkg_ = nullptr;
encoders::FeatureBank* BaselineFixture::bank_ = nullptr;

class AllModelsTest : public BaselineFixture,
                      public ::testing::WithParamInterface<std::string> {};

TEST_P(AllModelsTest, ScoreShapesAndConsistency) {
  auto model = CreateModel(GetParam(), Context(), Options());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->Name(), GetParam());
  model->SetTraining(false);

  std::vector<int64_t> heads = {0, 5, 9};
  std::vector<int64_t> rels = {0, 3, 1};
  std::vector<int64_t> tails = {2, 7, 11};

  ag::NoGradGuard guard;
  ag::Var all = model->ScoreAllTails(heads, rels);
  EXPECT_EQ(all.shape(),
            (tensor::Shape{3, Context().num_entities}));
  ag::Var aligned = model->ScoreTriples(heads, rels, tails);
  EXPECT_EQ(aligned.shape(), (tensor::Shape{3}));
  // The aligned score must equal the corresponding ScoreAllTails column.
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(aligned.value().data()[i],
                all.value().at({i, tails[static_cast<size_t>(i)]}), 1e-2)
        << GetParam() << " row " << i;
  }
}

TEST_P(AllModelsTest, GradientsReachMostParameters) {
  auto model = CreateModel(GetParam(), Context(), Options());
  model->SetTraining(true);
  std::vector<int64_t> heads = {0, 5, 9, 13};
  std::vector<int64_t> rels = {0, 3, 1, 2};
  ag::Var scores = model->ScoreAllTails(heads, rels);
  ag::Var loss = ag::SumAll(ag::Square(scores));
  ag::Var aux = model->AuxiliaryLoss(heads);  // e.g. TransAE reconstruction
  if (aux.defined()) loss = ag::Add(loss, aux);
  loss.Backward();
  int64_t with_grad = 0;
  int64_t total = 0;
  for (const auto& [name, p] : model->NamedParameters()) {
    ++total;
    with_grad += p.has_grad();
  }
  // Entity tables always participate; dropout/exchange may zero a few.
  EXPECT_GT(with_grad, (total * 2) / 3) << GetParam();
}

TEST_P(AllModelsTest, DeterministicAcrossInstancesWithSameSeed) {
  auto m1 = CreateModel(GetParam(), Context(), Options());
  auto m2 = CreateModel(GetParam(), Context(), Options());
  m1->SetTraining(false);
  m2->SetTraining(false);
  ag::NoGradGuard guard;
  ag::Var s1 = m1->ScoreAllTails({1, 2}, {0, 1});
  ag::Var s2 = m2->ScoreAllTails({1, 2}, {0, 1});
  for (int64_t i = 0; i < s1.numel(); ++i) {
    EXPECT_EQ(s1.value().data()[i], s2.value().data()[i]) << GetParam();
  }
}

namespace {
std::vector<std::string> ZooAndExtensions() {
  std::vector<std::string> names = AllModelNames();
  for (const auto& extra : ExtendedModelNames()) names.push_back(extra);
  return names;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(Zoo, AllModelsTest,
                         ::testing::ValuesIn(ZooAndExtensions()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_F(BaselineFixture, UnknownModelNameDies) {
  EXPECT_DEATH(CreateModel("NoSuchModel", Context(), Options()),
               "unknown model");
}

TEST_F(BaselineFixture, MultimodalModelsRequireFeatures) {
  ModelContext ctx = Context();
  ctx.features = nullptr;
  EXPECT_DEATH(CreateModel("IKRL", ctx, Options()), "features");
}

TEST_F(BaselineFixture, TransEScoreMatchesClosedForm) {
  auto model = CreateModel("TransE", Context(), Options());
  model->SetTraining(false);
  ag::NoGradGuard guard;
  ag::Var s = model->ScoreTriples({3}, {2}, {4});
  // Score must be a negated squared distance: <= 0.
  EXPECT_LE(s.value().data()[0], 0.0f);
}

TEST_F(BaselineFixture, RegimesMatchTheOriginalPapers) {
  auto ctx = Context();
  auto zoo = Options();
  EXPECT_EQ(CreateModel("ConvE", ctx, zoo)->regime(),
            TrainingRegime::kOneToN);
  EXPECT_EQ(CreateModel("CamE", ctx, zoo)->regime(),
            TrainingRegime::kOneToN);
  EXPECT_EQ(CreateModel("CompGCN", ctx, zoo)->regime(),
            TrainingRegime::kOneToN);
  EXPECT_EQ(CreateModel("MKGformer", ctx, zoo)->regime(),
            TrainingRegime::kOneToN);
  EXPECT_EQ(CreateModel("TransE", ctx, zoo)->regime(),
            TrainingRegime::kNegativeSampling);
  EXPECT_EQ(CreateModel("RotatE", ctx, zoo)->regime(),
            TrainingRegime::kNegativeSampling);
  EXPECT_EQ(CreateModel("a-RotatE", ctx, zoo)->regime(),
            TrainingRegime::kSelfAdversarial);
  EXPECT_EQ(CreateModel("PairRE", ctx, zoo)->regime(),
            TrainingRegime::kSelfAdversarial);
}

TEST_F(BaselineFixture, ExtendedModelsAreNotInTableThree) {
  auto table3 = AllModelNames();
  for (const auto& extra : ExtendedModelNames()) {
    EXPECT_EQ(std::find(table3.begin(), table3.end(), extra), table3.end())
        << extra;
  }
}

TEST_F(BaselineFixture, RecommendedConfigSetsMargins) {
  train::TrainConfig base;
  EXPECT_EQ(RecommendedTrainConfig("DistMult", base).margin, 0.0f);
  EXPECT_EQ(RecommendedTrainConfig("TransE", base).margin, 2.0f);
  EXPECT_EQ(RecommendedTrainConfig("RotatE", base).margin, 2.0f);
  EXPECT_EQ(RecommendedTrainConfig("PairRE", base).margin, 1.0f);
}

TEST_F(BaselineFixture, TransAeHasReconstructionLoss) {
  auto model = CreateModel("TransAE", Context(), Options());
  ag::Var aux = model->AuxiliaryLoss({0, 1, 2});
  ASSERT_TRUE(aux.defined());
  EXPECT_GT(aux.value().data()[0], 0.0f);
  auto plain = CreateModel("TransE", Context(), Options());
  EXPECT_FALSE(plain->AuxiliaryLoss({0}).defined());
}

TEST_F(BaselineFixture, CompGcnExportsConvolvedEntities) {
  auto ctx = Context();
  CompGcn::Config cfg;
  cfg.dim = 16;
  CompGcn model(ctx, cfg);
  ag::NoGradGuard guard;
  ag::Var h = model.ConvolvedEntities();
  EXPECT_EQ(h.shape(), (tensor::Shape{ctx.num_entities, 16}));
}

TEST_F(BaselineFixture, Stack2dShapes) {
  ag::Var a(tensor::Tensor::Zeros({2, 16}));
  ag::Var b(tensor::Tensor::Zeros({2, 16}));
  ag::Var img = Stack2d({a, b}, 4);
  EXPECT_EQ(img.shape(), (tensor::Shape{2, 2, 4, 4}));
  EXPECT_DEATH(Stack2d({a}, 5), "divisible");
}

TEST_F(BaselineFixture, CamEAblationSwitchesBuild) {
  auto zoo = Options();
  for (auto flag : {0, 1, 2, 3, 4, 5}) {
    auto z = zoo;
    switch (flag) {
      case 0: z.came.use_tca = false; break;
      case 1: z.came.use_exchange = false; break;
      case 2: z.came.use_mmf = false; break;
      case 3: z.came.use_ric = false; break;
      case 4: z.came.use_text = false; break;
      case 5: z.came.use_molecule = false; break;
    }
    auto model = CreateModel("CamE", Context(), z);
    ag::NoGradGuard guard;
    model->SetTraining(false);
    ag::Var s = model->ScoreAllTails({0}, {0});
    EXPECT_EQ(s.dim(1), Context().num_entities) << "flag " << flag;
  }
}

TEST_F(BaselineFixture, CamEModalityListAdaptsToDataset) {
  auto zoo = Options();
  core::CamE full(Context(), zoo.came);
  EXPECT_EQ(full.modality_names().size(), 3u);
  auto cfg = zoo.came;
  cfg.use_molecule = false;
  core::CamE no_mol(Context(), cfg);
  EXPECT_EQ(no_mol.modality_names().size(), 2u);
}

}  // namespace
}  // namespace came::baselines
