#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "datagen/bkg_generator.h"
#include "datagen/molecule.h"
#include "datagen/stream_bkg.h"
#include "datagen/textgen.h"
#include "kg/dataset.h"

namespace came::datagen {
namespace {

// --- molecules --------------------------------------------------------------

class ScaffoldTest : public ::testing::TestWithParam<int> {};

TEST_P(ScaffoldTest, EveryFamilyScaffoldIsValidAndConnected) {
  const auto family = static_cast<DrugFamily>(GetParam());
  Molecule m = FamilyScaffold(family);
  EXPECT_TRUE(m.IsValid()) << DrugFamilyName(family);
  EXPECT_GE(m.num_atoms(), 6);
  EXPECT_EQ(m.family, GetParam());
}

TEST_P(ScaffoldTest, GeneratedMoleculesStayValid) {
  const auto family = static_cast<DrugFamily>(GetParam());
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    Molecule m = GenerateMolecule(family, &rng);
    EXPECT_TRUE(m.IsValid()) << DrugFamilyName(family);
    EXPECT_GE(m.num_atoms(), FamilyScaffold(family).num_atoms());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ScaffoldTest,
                         ::testing::Range(0, kNumDrugFamilies),
                         [](const auto& info) {
                           return DrugFamilyName(
                               static_cast<DrugFamily>(info.param));
                         });

TEST(MoleculeTest, ScaffoldsAreDistinctAcrossFamilies) {
  // Element histograms differ between at least most family pairs.
  auto histogram = [](const Molecule& m) {
    std::map<int, int> h;
    for (int a : m.atoms) ++h[a];
    h[-1] = static_cast<int>(m.bonds.size());
    return h;
  };
  int distinct_pairs = 0;
  int total_pairs = 0;
  for (int i = 0; i < kNumDrugFamilies; ++i) {
    for (int j = i + 1; j < kNumDrugFamilies; ++j) {
      ++total_pairs;
      distinct_pairs += histogram(FamilyScaffold(static_cast<DrugFamily>(
                            i))) != histogram(FamilyScaffold(
                            static_cast<DrugFamily>(j)));
    }
  }
  EXPECT_EQ(distinct_pairs, total_pairs);
}

TEST(MoleculeTest, AdjacencySymmetric) {
  Molecule m = FamilyScaffold(DrugFamily::kPenicillin);
  auto adj = m.AdjacencyLists();
  for (int u = 0; u < static_cast<int>(adj.size()); ++u) {
    for (int v : adj[static_cast<size_t>(u)]) {
      const auto& back = adj[static_cast<size_t>(v)];
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
}

TEST(MoleculeTest, InvalidGraphDetected) {
  Molecule m;
  m.atoms = {kCarbon, kCarbon, kCarbon};
  m.bonds = {{0, 1}};  // atom 2 disconnected
  EXPECT_FALSE(m.IsValid());
  Molecule bad;
  bad.atoms = {kCarbon};
  bad.bonds = {{0, 5}};
  EXPECT_FALSE(bad.IsValid());
}

// --- text -------------------------------------------------------------------

TEST(TextGenTest, CompoundNamesCarryFamilyAffix) {
  Rng rng(3);
  for (int f = 0; f < kNumDrugFamilies; ++f) {
    const auto family = static_cast<DrugFamily>(f);
    EntityText t = GenerateCompoundText(family, &rng);
    const std::string affix = FamilyNameAffix(family);
    if (FamilyAffixIsPrefix(family)) {
      EXPECT_EQ(t.name.rfind(affix, 0), 0u) << t.name;
    } else {
      ASSERT_GE(t.name.size(), affix.size());
      EXPECT_EQ(t.name.substr(t.name.size() - affix.size()), affix)
          << t.name;
    }
    EXPECT_NE(t.description.find(DrugFamilyName(family)),
              std::string::npos);
  }
}

TEST(TextGenTest, GeneNamesShareClusterPrefix) {
  Rng rng(4);
  EntityText a = GenerateGeneText(2, &rng);
  EntityText b = GenerateGeneText(2, &rng);
  EntityText c = GenerateGeneText(5, &rng);
  EXPECT_EQ(a.name.substr(0, 3), b.name.substr(0, 3));
  EXPECT_NE(a.name.substr(0, 3), c.name.substr(0, 3));
}

TEST(TextGenTest, NamesAreSingleToken) {
  // The TSV format stores names whitespace-separated.
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(GenerateDiseaseText(i % 8, &rng).name.find(' '),
              std::string::npos);
    EXPECT_EQ(GenerateSideEffectText(i % 6, &rng).name.find(' '),
              std::string::npos);
  }
}

// --- BKG generator ----------------------------------------------------------

TEST(BkgGeneratorTest, DrkgPresetShape) {
  auto cfg = BkgConfig::DrkgMmSynth(0.1);
  auto bkg = GenerateBkg(cfg);
  const auto& ds = bkg.dataset;
  EXPECT_GT(ds.num_entities(), 50);
  EXPECT_EQ(ds.num_relations(), 16);
  EXPECT_TRUE(bkg.has_molecules);
  EXPECT_EQ(static_cast<int64_t>(bkg.texts.size()), ds.num_entities());
  EXPECT_EQ(static_cast<int64_t>(bkg.molecules.size()), ds.num_entities());
  EXPECT_EQ(static_cast<int64_t>(bkg.cluster.size()), ds.num_entities());
  // 8:1:1 split.
  const double total = static_cast<double>(
      ds.train.size() + ds.valid.size() + ds.test.size());
  EXPECT_NEAR(ds.train.size() / total, 0.8, 0.02);
}

TEST(BkgGeneratorTest, OnlyCompoundsHaveMolecules) {
  auto bkg = GenerateBkg(BkgConfig::DrkgMmSynth(0.1));
  for (int64_t e = 0; e < bkg.dataset.num_entities(); ++e) {
    const bool is_compound = bkg.dataset.vocab.entity_type(e) ==
                             kg::EntityType::kCompound;
    EXPECT_EQ(!bkg.molecules[static_cast<size_t>(e)].atoms.empty(),
              is_compound);
    if (is_compound) {
      EXPECT_TRUE(bkg.molecules[static_cast<size_t>(e)].IsValid());
      // Cluster id doubles as drug family.
      EXPECT_EQ(bkg.molecules[static_cast<size_t>(e)].family,
                bkg.cluster[static_cast<size_t>(e)]);
    }
  }
}

TEST(BkgGeneratorTest, OmahaPresetHasNoMolecules) {
  auto bkg = GenerateBkg(BkgConfig::OmahaMmSynth(0.1));
  EXPECT_FALSE(bkg.has_molecules);
  for (const auto& m : bkg.molecules) EXPECT_TRUE(m.atoms.empty());
  EXPECT_EQ(bkg.dataset.num_relations(), 8);
}

TEST(BkgGeneratorTest, TriplesRespectTypeSchema) {
  auto cfg = BkgConfig::DrkgMmSynth(0.1);
  auto bkg = GenerateBkg(cfg);
  const auto& vocab = bkg.dataset.vocab;
  std::map<std::string, std::pair<kg::EntityType, kg::EntityType>> schema;
  for (const auto& r : cfg.relations) {
    schema[r.name] = {r.head_type, r.tail_type};
  }
  for (const auto& t : bkg.dataset.AllTriples()) {
    const auto& [ht, tt] = schema.at(vocab.RelationName(t.rel));
    EXPECT_EQ(vocab.entity_type(t.head), ht);
    EXPECT_EQ(vocab.entity_type(t.tail), tt);
    EXPECT_NE(t.head, t.tail);
  }
}

TEST(BkgGeneratorTest, NoDuplicateTriples) {
  auto bkg = GenerateBkg(BkgConfig::DrkgMmSynth(0.1));
  kg::TripleStore seen;
  for (const auto& t : bkg.dataset.AllTriples()) {
    EXPECT_TRUE(seen.Add(t));
  }
}

TEST(BkgGeneratorTest, DeterministicForSeed) {
  auto a = GenerateBkg(BkgConfig::DrkgMmSynth(0.1));
  auto b = GenerateBkg(BkgConfig::DrkgMmSynth(0.1));
  ASSERT_EQ(a.dataset.train.size(), b.dataset.train.size());
  for (size_t i = 0; i < a.dataset.train.size(); ++i) {
    EXPECT_EQ(a.dataset.train[i], b.dataset.train[i]);
  }
  EXPECT_EQ(a.texts[0].name, b.texts[0].name);
}

TEST(BkgGeneratorTest, DifferentSeedsDiffer) {
  auto cfg = BkgConfig::DrkgMmSynth(0.1);
  auto a = GenerateBkg(cfg);
  cfg.seed = 1234;
  auto b = GenerateBkg(cfg);
  EXPECT_NE(a.texts[0].name, b.texts[0].name);
}

TEST(BkgGeneratorTest, LongTailDegreeDistribution) {
  auto bkg = GenerateBkg(BkgConfig::DrkgMmSynth(0.3));
  std::map<int64_t, int64_t> degree;
  for (const auto& t : bkg.dataset.AllTriples()) {
    ++degree[t.head];
    ++degree[t.tail];
  }
  std::vector<int64_t> degrees;
  for (const auto& [_, d] : degree) degrees.push_back(d);
  std::sort(degrees.rbegin(), degrees.rend());
  // Top decile should hold several times the median mass (long tail).
  const int64_t median = degrees[degrees.size() / 2];
  EXPECT_GT(degrees[degrees.size() / 20], 3 * median);
}

TEST(BkgGeneratorTest, ScaledShrinksCounts) {
  auto base = BkgConfig::DrkgMmSynth(1.0);
  auto half = base.Scaled(0.5);
  EXPECT_NEAR(static_cast<double>(half.num_triples),
              0.5 * base.num_triples, base.num_triples * 0.01);
  EXPECT_NEAR(static_cast<double>(half.num_compounds),
              0.5 * base.num_compounds, 2.0);
}

TEST(BkgGeneratorTest, CompoundIdsHelper) {
  auto bkg = GenerateBkg(BkgConfig::DrkgMmSynth(0.1));
  auto ids = bkg.CompoundIds();
  EXPECT_FALSE(ids.empty());
  for (int64_t id : ids) {
    EXPECT_EQ(bkg.dataset.vocab.entity_type(id),
              kg::EntityType::kCompound);
  }
}

// --- config validation ------------------------------------------------------

TEST(BkgConfigValidateTest, DefaultPresetsAreValid) {
  EXPECT_TRUE(BkgConfig::DrkgMmSynth(0.1).Validate().ok());
  EXPECT_TRUE(BkgConfig::OmahaMmSynth(0.1).Validate().ok());
}

TEST(BkgConfigValidateTest, RejectsBadCounts) {
  auto c = BkgConfig::DrkgMmSynth(0.1);
  c.num_genes = -1;
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);

  c = BkgConfig::DrkgMmSynth(0.1);
  c.num_triples = 0;
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);

  c = BkgConfig::DrkgMmSynth(0.1);
  c.num_genes = c.num_compounds = c.num_diseases = c.num_side_effects =
      c.num_symptoms = 0;
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(BkgConfigValidateTest, RejectsBadClusters) {
  auto c = BkgConfig::DrkgMmSynth(0.1);
  c.gene_clusters = 0;
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);
  // Zero clusters for an absent type is fine.
  c = BkgConfig::DrkgMmSynth(0.1);
  c.num_symptoms = 0;
  c.symptom_clusters = 0;
  EXPECT_TRUE(c.Validate().ok());
}

TEST(BkgConfigValidateTest, RejectsBadWeights) {
  auto c = BkgConfig::DrkgMmSynth(0.1);
  for (auto& r : c.relations) r.weight = 0.0;
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);

  c = BkgConfig::DrkgMmSynth(0.1);
  c.relations[0].weight = -0.5;
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);

  c = BkgConfig::DrkgMmSynth(0.1);
  c.relations.clear();
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(BkgConfigValidateTest, RejectsRelationOverEmptyType) {
  auto c = BkgConfig::DrkgMmSynth(0.1);
  c.num_side_effects = 0;  // causes_CSE now points at an empty type
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(BkgConfigValidateTest, RejectsImpossibleTripleBudget) {
  auto c = BkgConfig::DrkgMmSynth(0.1);
  c.num_triples = INT64_MAX / 2;  // no population admits this many
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(BkgConfigValidateTest, RejectsBadFidelityAndZipf) {
  auto c = BkgConfig::DrkgMmSynth(0.1);
  c.cluster_fidelity = 1.5;
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);
  c = BkgConfig::DrkgMmSynth(0.1);
  c.head_zipf = -0.1;
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);
}

// --- 64-bit index paths (reduced proxy scale) -------------------------------

TEST(EntityLayoutTest, ArithmeticPast2To31) {
  // A population summing past 2^31: every id computation must stay
  // 64-bit. (The in-RAM generator at this scale would not even fit; the
  // layout math is exactly what the streaming path relies on.)
  BkgConfig c = BkgConfig::DrkgMmSynth(1.0);
  c.num_genes = int64_t{3} * (int64_t{1} << 30);      // > 2^31 on its own
  c.num_compounds = (int64_t{1} << 31) + 12345;
  const EntityLayout layout(c);
  EXPECT_EQ(layout.total(), c.num_genes + c.num_compounds + c.num_diseases +
                                c.num_side_effects + c.num_symptoms);
  EXPECT_GT(layout.total(), int64_t{1} << 32);

  EXPECT_EQ(layout.TypeOf(0), kg::EntityType::kGene);
  EXPECT_EQ(layout.TypeOf(c.num_genes - 1), kg::EntityType::kGene);
  EXPECT_EQ(layout.TypeOf(c.num_genes), kg::EntityType::kCompound);
  const int64_t big_id = c.num_genes + c.num_compounds - 1;  // > 2^32
  EXPECT_EQ(layout.TypeOf(big_id), kg::EntityType::kCompound);
  EXPECT_EQ(layout.TypeBegin(kg::EntityType::kDisease),
            c.num_genes + c.num_compounds);

  // Cluster assignment at huge ids is in range and deterministic.
  const int64_t cl = layout.ClusterOf(big_id);
  EXPECT_GE(cl, 0);
  EXPECT_LT(cl, kNumDrugFamilies);
  EXPECT_EQ(cl, layout.ClusterOf(big_id));
}

TEST(EntityLayoutTest, ScaledConfigStays64Bit) {
  // Scaled() with a factor that pushes counts past 2^31 must not wrap.
  const BkgConfig big = BkgConfig::DrkgMmSynth(1.0).Scaled(4.0e6);
  EXPECT_GT(big.num_genes, int64_t{1} << 31);
  EXPECT_GT(big.num_compounds, int64_t{1} << 31);
  EXPECT_GT(big.num_triples, int64_t{1} << 33);
  const EntityLayout layout(big);
  EXPECT_EQ(layout.total(),
            big.num_genes + big.num_compounds + big.num_diseases +
                big.num_side_effects + big.num_symptoms);
}

TEST(MoleculeTest, LargeDecorationBudgetStays64Bit) {
  // The decoration budget is int64 end to end; a moderate large budget
  // exercises the accumulation loop without building a 2^31-atom graph.
  Rng rng(3);
  Molecule m = GenerateMolecule(DrugFamily::kPhenol, &rng, 5000);
  EXPECT_TRUE(m.IsValid());
  EXPECT_GT(m.num_atoms(), 4000);
}

// --- streaming generator ----------------------------------------------------

class StreamBkgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("came_stream_bkg_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(StreamBkgTest, StreamedDatasetLoadsAndIsWellFormed) {
  const BkgConfig config = BkgConfig::DrkgMmSynth(0.1);
  StreamBkgOptions opts;
  opts.out_dir = dir_.string();
  const auto r = StreamGenerateBkg(config, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const StreamBkgSummary& s = r.value();
  EXPECT_EQ(s.num_relations,
            static_cast<int64_t>(config.relations.size()));
  EXPECT_GT(s.train_triples, 0);
  const int64_t total = s.train_triples + s.valid_triples + s.test_triples;
  EXPECT_GT(total, config.num_triples / 2);
  EXPECT_LE(total, config.num_triples);
  // Split roughly 8:1:1.
  EXPECT_NEAR(static_cast<double>(s.train_triples) / total, 0.8, 0.05);

  // The emitted directory round-trips through the hardened loader — every
  // id in range, vocab dense, names unique.
  const auto loaded = kg::Dataset::LoadTsv(dir_.string(), "streamed");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_entities(), s.num_entities);
  EXPECT_EQ(loaded.value().num_relations(), s.num_relations);
  EXPECT_EQ(static_cast<int64_t>(loaded.value().train.size()),
            s.train_triples);

  // Triples respect the schema's type constraints.
  const EntityLayout layout(config);
  for (const auto& t : loaded.value().train) {
    const auto& schema = config.relations[static_cast<size_t>(t.rel)];
    EXPECT_EQ(layout.TypeOf(t.head), schema.head_type);
    EXPECT_EQ(layout.TypeOf(t.tail), schema.tail_type);
    EXPECT_NE(t.head, t.tail);
  }
}

TEST_F(StreamBkgTest, DeterministicPerSeed) {
  const BkgConfig config = BkgConfig::OmahaMmSynth(0.2);
  StreamBkgOptions opts;
  opts.out_dir = (dir_ / "a").string();
  ASSERT_TRUE(StreamGenerateBkg(config, opts).ok());
  opts.out_dir = (dir_ / "b").string();
  ASSERT_TRUE(StreamGenerateBkg(config, opts).ok());
  for (const char* f : {"train.tsv", "valid.tsv", "test.tsv"}) {
    std::ifstream a(dir_ / "a" / f), b(dir_ / "b" / f);
    std::string sa((std::istreambuf_iterator<char>(a)),
                   std::istreambuf_iterator<char>());
    std::string sb((std::istreambuf_iterator<char>(b)),
                   std::istreambuf_iterator<char>());
    EXPECT_FALSE(sa.empty());
    EXPECT_EQ(sa, sb) << f;
  }
}

TEST_F(StreamBkgTest, RejectsInvalidConfigAndOptions) {
  BkgConfig bad = BkgConfig::DrkgMmSynth(0.1);
  bad.num_triples = 0;
  StreamBkgOptions opts;
  opts.out_dir = dir_.string();
  EXPECT_EQ(StreamGenerateBkg(bad, opts).status().code(),
            Status::Code::kInvalidArgument);

  StreamBkgOptions no_dir;
  EXPECT_EQ(StreamGenerateBkg(BkgConfig::DrkgMmSynth(0.1), no_dir)
                .status()
                .code(),
            Status::Code::kInvalidArgument);

  StreamBkgOptions bad_split;
  bad_split.out_dir = dir_.string();
  bad_split.train_frac = 0.95;
  bad_split.valid_frac = 0.10;
  EXPECT_EQ(StreamGenerateBkg(BkgConfig::DrkgMmSynth(0.1), bad_split)
                .status()
                .code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace came::datagen
