// Tape auditor: positive audits over healthy graphs, and one negative
// (death) test per defect class the auditor exists to catch — wrong-shape
// gradients, un-reduced broadcast gradients, aliased accumulators,
// non-finite values/gradients with provenance, ownership cycles, and
// expired interior outputs. Each broken op is built through the same
// internal::Node machinery the real op library uses, so the tests pin the
// diagnostics (op name + tape path), not just the abort.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "autograd/op_registry.h"
#include "autograd/ops.h"
#include "autograd/tape_audit.h"
#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace came::ag {
namespace {

namespace ts = came::tensor;
using audit::AuditLevel;
using internal::Node;
using internal::VarState;

/// Pins the audit level for one test and restores kOff on scope exit, so
/// tests stay independent of each other and of CAME_TAPE_AUDIT.
class ScopedAuditLevel {
 public:
  explicit ScopedAuditLevel(AuditLevel level) {
    audit::SetTapeAuditLevel(level);
  }
  ~ScopedAuditLevel() { audit::SetTapeAuditLevel(AuditLevel::kOff); }
};

/// Records a custom tape node exactly as the op library would, with an
/// arbitrary backward closure — the hook for planting each defect class.
Var RecordNode(const char* name, Tensor value, const std::vector<Var>& inputs,
               std::function<void(const Tensor&)> backward) {
  auto node = std::make_shared<Node>();
  node->op_id = OpRegistry::Instance().Register(name);
  for (const auto& v : inputs) node->inputs.push_back(v.state());
  auto out = std::make_shared<VarState>();
  out->value = std::move(value);
  out->requires_grad = true;
  out->producer = node;
  node->output = out;
  node->backward = std::move(backward);
  return Var::FromState(out);
}

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

// ---------------------------------------------------------------------------
// Registry introspection
// ---------------------------------------------------------------------------

TEST(OpRegistryTest, OpsRegisterThemselvesWithBroadcastSpecs) {
  Var a(Tensor::Full({2, 3}, 1.0f), true);
  Var b(Tensor::Full({3}, 2.0f), true);
  (void)Add(a, b);
  (void)MatMul(Var(Tensor::Full({2, 3}, 1.0f), true),
               Var(Tensor::Full({3, 2}, 1.0f), true));
  OpRegistry& reg = OpRegistry::Instance();
  const int add_id = reg.Find("Add");
  ASSERT_GE(add_id, 0);
  EXPECT_EQ(reg.Get(add_id).broadcast, BroadcastSpec::kNumpy);
  const int mm_id = reg.Find("MatMul");
  ASSERT_GE(mm_id, 0);
  EXPECT_EQ(reg.Get(mm_id).broadcast, BroadcastSpec::kNone);
  EXPECT_EQ(OpName(add_id), "Add");
  EXPECT_EQ(OpName(-1), "<unregistered>");
}

TEST(OpRegistryTest, RegistrationIsIdempotent) {
  OpRegistry& reg = OpRegistry::Instance();
  const int first = reg.Register("TapeAuditTestOp");
  const int second = reg.Register("TapeAuditTestOp");
  EXPECT_EQ(first, second);
}

TEST(OpRegistryTest, ConflictingBroadcastSpecDies) {
  EXPECT_DEATH(
      {
        OpRegistry::Instance().Register("TapeAuditConflictOp",
                                        BroadcastSpec::kNone);
        OpRegistry::Instance().Register("TapeAuditConflictOp",
                                        BroadcastSpec::kNumpy);
      },
      "different broadcast spec");
}

TEST(DumpTapeTest, NamesOpsAndShapes) {
  Var x(Tensor::Full({2, 3}, 1.0f), true);
  Var y(Tensor::Full({3}, 2.0f), true);
  Var loss = SumAll(Mul(Add(x, y), y));
  const std::string dump = audit::DumpTape(loss);
  EXPECT_NE(dump.find("Add"), std::string::npos) << dump;
  EXPECT_NE(dump.find("Mul"), std::string::npos) << dump;
  EXPECT_NE(dump.find("SumAll"), std::string::npos) << dump;
  EXPECT_NE(dump.find("[2, 3]"), std::string::npos) << dump;
}

// ---------------------------------------------------------------------------
// Positive audits: healthy graphs pass at every level
// ---------------------------------------------------------------------------

TEST(TapeAuditTest, HealthyCompositeGraphPassesFullAudit) {
  ScopedAuditLevel scope(AuditLevel::kFull);
  Var table(Tensor::Full({5, 8}, 0.25f), true);
  Var w(Tensor::Full({8, 8}, 0.05f), true);
  Var rows = Gather(table, {0, 2, 4, 2});
  Var att = CoAttentionApply(rows, Sigmoid(MatMul(rows, w)), Sigmoid(rows),
                             Const(Tensor::Scalar(0.5f)));
  Var loss = MeanAll(Square(att));
  audit::AuditTape(loss, "pre-backward-test");
  loss.Backward();  // runs the full sweep audit internally
  EXPECT_TRUE(table.has_grad());
  EXPECT_TRUE(w.has_grad());
}

TEST(TapeAuditTest, BroadcastGraphPassesShapeAudit) {
  ScopedAuditLevel scope(AuditLevel::kShape);
  Var a(Tensor::Full({3, 4}, 1.0f), true);
  Var b(Tensor::Full({4}, 2.0f), true);
  Var loss = SumAll(Div(Mul(Add(a, b), b), AddScalar(Square(b), 1.0f)));
  audit::AuditTape(loss, "pre-backward-test");
  loss.Backward();
  EXPECT_EQ(a.grad().shape(), a.shape());
  EXPECT_EQ(b.grad().shape(), b.shape());
}

TEST(TapeAuditTest, OffLevelSkipsAllChecks) {
  // The same defect the shape audit catches (direct wrong-shape grad
  // assignment) goes unnoticed at kOff — documents that the audit is
  // strictly opt-in and costs nothing by default.
  ScopedAuditLevel scope(AuditLevel::kOff);
  Var x(Tensor::Full({2, 3}, 1.0f), true);
  auto xs = x.state();
  Var loss = RecordNode("BadShapeGradOffTest", Tensor::Scalar(1.0f), {x},
                        [xs](const Tensor&) {
                          xs->grad = Tensor::Full({5}, 1.0f);
                          xs->has_grad = true;
                        });
  loss.Backward();
  EXPECT_TRUE(x.has_grad());  // silently wrong without the audit
}

// ---------------------------------------------------------------------------
// Negative tests: one per defect class, pinning the op-name diagnostic
// ---------------------------------------------------------------------------

TEST(TapeAuditDeathTest, WrongShapeGradientNamesTheOp) {
  EXPECT_DEATH(
      {
        audit::SetTapeAuditLevel(AuditLevel::kShape);
        Var x(Tensor::Full({2, 3}, 1.0f), true);
        auto xs = x.state();
        Var loss = RecordNode("BadShapeGrad", Tensor::Scalar(1.0f), {x},
                              [xs](const Tensor&) {
                                // Bypasses AccumulateGrad's own check.
                                xs->grad = Tensor::Full({5}, 1.0f);
                                xs->has_grad = true;
                              });
        loss.Backward();
      },
      "BadShapeGrad.*gradient of shape");
}

TEST(TapeAuditDeathTest, UnreducedBroadcastGradientNamesTheOp) {
  EXPECT_DEATH(
      {
        audit::SetTapeAuditLevel(AuditLevel::kShape);
        Var a(Tensor::Full({3, 4}, 1.0f), true);
        Var b(Tensor::Full({4}, 2.0f), true);
        auto as = a.state();
        auto bs = b.state();
        // A broken broadcast op: accumulates the full [3, 4] output
        // gradient into the [4] operand without ReduceToShape.
        Var bad = RecordNode("BadBroadcastGrad",
                             ts::Add(a.value(), b.value()), {a, b},
                             [as, bs](const Tensor& g) {
                               as->AccumulateGrad(g);
                               bs->AccumulateGrad(g);  // not reduced!
                             });
        SumAll(bad).Backward();
      },
      "in backward of op 'BadBroadcastGrad'");
}

TEST(TapeAuditDeathTest, AliasedAccumulatorsAreCaught) {
  EXPECT_DEATH(
      {
        audit::SetTapeAuditLevel(AuditLevel::kShape);
        Var a(Tensor::Full({3}, 1.0f), true);
        Var b(Tensor::Full({3}, 2.0f), true);
        auto as = a.state();
        auto bs = b.state();
        Var loss = RecordNode("BadAliasGrad", Tensor::Scalar(1.0f), {a, b},
                              [as, bs](const Tensor&) {
                                // One buffer installed as two accumulators:
                                // the ClipGradNorm mutate-through-alias bug
                                // class, planted inside the tape.
                                Tensor shared = Tensor::Full({3}, 1.0f);
                                as->grad = shared;
                                as->has_grad = true;
                                bs->grad = shared;
                                bs->has_grad = true;
                              });
        loss.Backward();
      },
      "alias the same storage");
}

TEST(TapeAuditDeathTest, GradientAliasingForwardValueIsCaught) {
  EXPECT_DEATH(
      {
        audit::SetTapeAuditLevel(AuditLevel::kShape);
        Var x(Tensor::Full({3}, 1.0f), true);
        auto xs = x.state();
        Var loss = RecordNode("BadValueAliasGrad", Tensor::Scalar(1.0f), {x},
                              [xs](const Tensor&) {
                                // Installs the forward value itself as the
                                // accumulator: the next accumulation would
                                // corrupt the parameter.
                                xs->grad = xs->value;
                                xs->has_grad = true;
                              });
        loss.Backward();
      },
      "alias");
}

TEST(TapeAuditDeathTest, NanProducingBackwardNamesTheOp) {
  EXPECT_DEATH(
      {
        audit::SetTapeAuditLevel(AuditLevel::kFull);
        Var x(Tensor::Full({4}, 1.0f), true);
        auto xs = x.state();
        Var loss = RecordNode("BadNanBackward", Tensor::Scalar(1.0f), {x},
                              [xs](const Tensor&) {
                                xs->AccumulateGrad(Tensor::Full({4}, kNaN));
                              });
        loss.Backward();
      },
      "BadNanBackward.*non-finite");
}

TEST(TapeAuditDeathTest, NanForwardValueGetsProvenance) {
  // A real op this time: Log of a negative input makes the NaN, two more
  // ops consume it downstream — full audit blames Log, not the symptom.
  EXPECT_DEATH(
      {
        audit::SetTapeAuditLevel(AuditLevel::kFull);
        Var x(Tensor::FromVector({2}, {-1.0f, 2.0f}), true);
        Var loss = SumAll(Square(Log(x)));
        loss.Backward();
      },
      "op 'Log' produced the first non-finite value");
}

TEST(TapeAuditDeathTest, NonFiniteLeafIsBlamedNotTheConsumingOp) {
  EXPECT_DEATH(
      {
        audit::SetTapeAuditLevel(AuditLevel::kFull);
        Var x(Tensor::FromVector({2}, {kNaN, 1.0f}), true);
        Var loss = SumAll(Square(x));
        loss.Backward();
      },
      "leaf.*feeds non-finite values into op 'Square'");
}

TEST(TapeAuditDeathTest, ShapeLevelDoesNotScanForNonFinite) {
  // Demonstrates the shape/full split: the same NaN graph survives kShape.
  ScopedAuditLevel scope(AuditLevel::kShape);
  Var x(Tensor::FromVector({2}, {-1.0f, 2.0f}), true);
  Var loss = SumAll(Square(Log(x)));
  loss.Backward();
  EXPECT_TRUE(x.has_grad());
}

TEST(TapeAuditDeathTest, OwnershipCycleIsDetected) {
  EXPECT_DEATH(
      {
        audit::SetTapeAuditLevel(AuditLevel::kShape);
        // Two hand-wired nodes owning each other's inputs: impossible via
        // the op library, fatal if it ever appears (leak + double-count).
        auto s1 = std::make_shared<VarState>();
        s1->value = Tensor::Scalar(1.0f);
        auto s2 = std::make_shared<VarState>();
        s2->value = Tensor::Scalar(2.0f);
        auto n1 = std::make_shared<Node>();
        n1->op_id = OpRegistry::Instance().Register("CycleOpA");
        auto n2 = std::make_shared<Node>();
        n2->op_id = OpRegistry::Instance().Register("CycleOpB");
        n1->inputs = {s2};
        n1->output = s1;
        s1->producer = n1;
        n2->inputs = {s1};
        n2->output = s2;
        s2->producer = n2;
        audit::AuditTape(Var::FromState(s1), "cycle-test");
      },
      "ownership cycle");
}

TEST(TapeAuditDeathTest, ExpiredInteriorOutputIsDetected) {
  EXPECT_DEATH(
      {
        audit::SetTapeAuditLevel(AuditLevel::kShape);
        Var x(Tensor::Full({2}, 1.0f), true);
        Var mid = Scale(x, 2.0f);
        Var loss = SumAll(mid);
        // Corrupt the tape: the interior node loses its output before
        // backward, so its gradient would be dropped silently.
        mid.state()->producer->output.reset();
        audit::AuditTape(loss, "expired-test");
      },
      "expired while the tape still references");
}

// ---------------------------------------------------------------------------
// Audit levels and environment plumbing
// ---------------------------------------------------------------------------

TEST(TapeAuditLevelTest, OverrideWinsAndRestores) {
  audit::SetTapeAuditLevel(AuditLevel::kFull);
  EXPECT_EQ(audit::TapeAuditLevel(), AuditLevel::kFull);
  audit::SetTapeAuditLevel(AuditLevel::kShape);
  EXPECT_EQ(audit::TapeAuditLevel(), AuditLevel::kShape);
  audit::SetTapeAuditLevel(AuditLevel::kOff);
  EXPECT_EQ(audit::TapeAuditLevel(), AuditLevel::kOff);
}

}  // namespace
}  // namespace came::ag
