// Invariants of the tape machinery itself: gradient linearity, tape
// consumption semantics, grad-mode scoping, and deep-graph behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/random.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace came::ag {
namespace {

Var RandomVar(Shape shape, Rng* rng) {
  return Var(nn::NormalInit(std::move(shape), rng, 1.0), true);
}

TEST(TapeInvariantTest, GradientIsLinearInLossScaling) {
  Rng rng(1);
  Var x = RandomVar({4}, &rng);
  SumAll(Square(x)).Backward();
  tensor::Tensor g1 = x.grad().Clone();
  x.ZeroGrad();
  Scale(SumAll(Square(x)), 3.0f).Backward();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x.grad().data()[i], 3.0f * g1.data()[i], 1e-4);
  }
}

TEST(TapeInvariantTest, AccumulationAcrossTwoBackwards) {
  // Two independent graphs over the same leaf accumulate gradients.
  Rng rng(2);
  Var x = RandomVar({3}, &rng);
  SumAll(x).Backward();
  SumAll(Scale(x, 2.0f)).Backward();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(x.grad().data()[i], 3.0f);
  }
}

TEST(TapeInvariantTest, SecondBackwardOnConsumedTapeIsNoOp) {
  Var x(tensor::Tensor::Full({2}, 1.0f), true);
  Var loss = SumAll(Scale(x, 2.0f));
  loss.Backward();
  const float after_first = x.grad().data()[0];
  loss.Backward();  // tape consumed: the seed lands on the loss itself,
                    // but no interior node fires again
  EXPECT_FLOAT_EQ(x.grad().data()[0], after_first);
}

TEST(TapeInvariantTest, NoGradGuardNests) {
  Var x(tensor::Tensor::Full({2}, 1.0f), true);
  {
    NoGradGuard outer;
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled());  // still inside outer
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(TapeInvariantTest, LeafWithoutRequiresGradStaysGradFree) {
  Var x(tensor::Tensor::Full({2}, 1.0f), false);
  Var y(tensor::Tensor::Full({2}, 2.0f), true);
  SumAll(Mul(x, y)).Backward();
  EXPECT_FALSE(x.has_grad());
  EXPECT_TRUE(y.has_grad());
}

TEST(TapeInvariantTest, DeepChainDoesNotOverflowStack) {
  // 3000 chained ops exercise the iterative (non-recursive) topo sort.
  Var x(tensor::Tensor::Full({4}, 1.0f), true);
  Var y = x;
  for (int i = 0; i < 3000; ++i) y = AddScalar(y, 0.001f);
  SumAll(y).Backward();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(x.grad().data()[i], 1.0f);
  }
}

TEST(TapeInvariantTest, WideFanOutAccumulatesExactly) {
  Rng rng(3);
  Var x = RandomVar({4}, &rng);
  std::vector<Var> branches;
  for (int i = 0; i < 64; ++i) branches.push_back(Scale(x, 1.0f));
  SumAll(Concat(branches, 0)).Backward();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(x.grad().data()[i], 64.0f);
  }
}

TEST(TapeInvariantTest, DetachInsideGraphCutsExactlyOnePath) {
  Rng rng(4);
  Var x = RandomVar({3}, &rng);
  // loss = sum(x * detach(x)) + sum(x): d/dx = detach(x) + 1.
  Var loss = Add(SumAll(Mul(x, x.Detach())), SumAll(x));
  loss.Backward();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.grad().data()[i], x.value().data()[i] + 1.0f, 1e-5);
  }
}

TEST(TapeInvariantTest, ChainRuleThroughEveryCompositeShape) {
  // A miniature CamE step: gather -> attention -> conv -> bce.
  Rng rng(5);
  Var table = RandomVar({6, 8}, &rng);
  Var w(nn::XavierNormal({8, 8}, &rng), true);
  Var conv_w(nn::XavierNormal({2, 1, 3, 3}, &rng), true);
  Var rows = Gather(table, {0, 2, 4, 2});
  Var att = CoAttentionApply(rows, Sigmoid(MatMul(rows, w)),
                             Sigmoid(rows), Const(tensor::Tensor::Scalar(0.5f)));
  Var img = Reshape(att, {4, 1, 2, 4});
  Var conv = Conv2d(img, conv_w, Var(), 1);
  tensor::Tensor targets(conv.shape());
  Var loss = BceWithLogitsMean(conv, targets);
  loss.Backward();
  EXPECT_TRUE(table.has_grad());
  EXPECT_TRUE(w.has_grad());
  EXPECT_TRUE(conv_w.has_grad());
  EXPECT_TRUE(std::isfinite(loss.value().data()[0]));
  EXPECT_GT(tensor::MaxAbs(table.grad()), 0.0f);
}

TEST(TapeInvariantTest, GradShapesAlwaysMatchValues) {
  Rng rng(6);
  Var a = RandomVar({2, 3}, &rng);
  Var b = RandomVar({3}, &rng);  // broadcast
  SumAll(Mul(Add(a, b), b)).Backward();
  EXPECT_EQ(a.grad().shape(), a.shape());
  EXPECT_EQ(b.grad().shape(), b.shape());
}

}  // namespace
}  // namespace came::ag
