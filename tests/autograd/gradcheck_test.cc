// Finite-difference verification of every differentiable op. These are the
// load-bearing tests for the whole model zoo: if these pass, training code
// upstream can trust its gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "common/random.h"

namespace came::ag {
namespace {

constexpr double kTol = 2e-2;  // float32 + central differences

Var RandomVar(Shape shape, Rng* rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Normal() * scale);
  }
  return Var(std::move(t), true);
}

// Reduces any output to a well-conditioned scalar: sum(v * w) with a fixed
// random weighting so every output element affects the loss differently.
Var WeightedSum(const Var& v, uint64_t seed) {
  Rng rng(seed);
  Tensor w(v.shape());
  for (int64_t i = 0; i < w.numel(); ++i) {
    w.data()[i] = static_cast<float>(rng.Uniform(0.5, 1.5));
  }
  return SumAll(Mul(v, Const(w)));
}

struct UnaryCase {
  const char* name;
  Var (*fn)(const Var&);
  double scale;  // input magnitude (keeps log/sqrt in-domain via shift below)
  bool positive_only;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifferences) {
  const UnaryCase& c = GetParam();
  Rng rng(99);
  Var x = RandomVar({3, 4}, &rng, c.scale);
  if (c.positive_only) {
    Tensor& t = x.mutable_value();
    for (int64_t i = 0; i < t.numel(); ++i) {
      t.data()[i] = std::fabs(t.data()[i]) + 0.5f;
    }
  }
  auto fn = [&](const std::vector<Var>& leaves) {
    return WeightedSum(c.fn(leaves[0]), 42);
  };
  EXPECT_LT(GradCheck(fn, {x}), kTol) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(UnaryCase{"Neg", &Neg, 1.0, false},
                      UnaryCase{"Exp", &Exp, 0.5, false},
                      UnaryCase{"Log", &Log, 1.0, true},
                      UnaryCase{"Sqrt", &Sqrt, 1.0, true},
                      UnaryCase{"Square", &Square, 1.0, false},
                      UnaryCase{"Sigmoid", &Sigmoid, 1.0, false},
                      UnaryCase{"Tanh", &Tanh, 1.0, false},
                      UnaryCase{"LogSigmoid", &LogSigmoid, 1.0, false},
                      UnaryCase{"Cos", &Cos, 1.0, false},
                      UnaryCase{"Sin", &Sin, 1.0, false}),
    [](const auto& info) { return info.param.name; });

TEST(GradCheckTest, Add) {
  Rng rng(1);
  Var a = RandomVar({2, 3}, &rng);
  Var b = RandomVar({2, 3}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Add(v[0], v[1]), 7);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, AddBroadcastRow) {
  Rng rng(2);
  Var a = RandomVar({3, 4}, &rng);
  Var b = RandomVar({4}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Add(v[0], v[1]), 8);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, MulBroadcastColumn) {
  Rng rng(3);
  Var a = RandomVar({3, 4}, &rng);
  Var b = RandomVar({3, 1}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Mul(v[0], v[1]), 9);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, SubAndDiv) {
  Rng rng(4);
  Var a = RandomVar({2, 3}, &rng);
  Var b = RandomVar({2, 3}, &rng);
  // Keep divisor away from zero.
  Tensor& t = b.mutable_value();
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = (t.data()[i] >= 0 ? 1.0f : -1.0f) *
                  (std::fabs(t.data()[i]) + 1.0f);
  }
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Div(Sub(v[0], v[1]), v[1]), 10);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, SubBroadcastRow) {
  Rng rng(33);
  Var a = RandomVar({3, 4}, &rng);
  Var b = RandomVar({4}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Sub(v[0], v[1]), 31);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, DivBroadcastColumn) {
  Rng rng(34);
  Var a = RandomVar({3, 4}, &rng);
  Var b = RandomVar({3, 1}, &rng);
  // Keep divisor away from zero.
  Tensor& t = b.mutable_value();
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = (t.data()[i] >= 0 ? 1.0f : -1.0f) *
                  (std::fabs(t.data()[i]) + 1.0f);
  }
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Div(v[0], v[1]), 32);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, ScaleAndAddScalar) {
  Rng rng(35);
  Var a = RandomVar({3, 4}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(AddScalar(Scale(v[0], -1.7f), 0.3f), 33);
  };
  EXPECT_LT(GradCheck(fn, {a}), kTol);
}

TEST(GradCheckTest, MeanAlongKeepAndDrop) {
  Rng rng(36);
  Var a = RandomVar({3, 4}, &rng);
  auto fn_keep = [](const std::vector<Var>& v) {
    return WeightedSum(MeanAlong(v[0], 0, true), 34);
  };
  EXPECT_LT(GradCheck(fn_keep, {a}), kTol);
  auto fn_drop = [](const std::vector<Var>& v) {
    return WeightedSum(MeanAlong(v[0], 1, false), 35);
  };
  EXPECT_LT(GradCheck(fn_drop, {a}), kTol);
}

TEST(GradCheckTest, DropoutDeterministicMask) {
  Rng rng(37);
  Var a = RandomVar({4, 4}, &rng);
  // Re-seeding per invocation pins the mask, making the op a fixed linear
  // map that finite differences can verify.
  auto fn = [](const std::vector<Var>& v) {
    Rng mask_rng(123);
    return WeightedSum(Dropout(v[0], 0.4f, &mask_rng, true), 36);
  };
  EXPECT_LT(GradCheck(fn, {a}), kTol);
}

TEST(GradCheckTest, MatMul) {
  Rng rng(5);
  Var a = RandomVar({3, 4}, &rng);
  Var b = RandomVar({4, 2}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(MatMul(v[0], v[1]), 11);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, BatchMatMul) {
  Rng rng(6);
  Var a = RandomVar({2, 3, 4}, &rng, 0.5);
  Var b = RandomVar({2, 4, 2}, &rng, 0.5);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(BatchMatMul(v[0], v[1]), 12);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, TransposeChain) {
  Rng rng(7);
  Var a = RandomVar({3, 4}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Transpose(v[0]), 13);
  };
  EXPECT_LT(GradCheck(fn, {a}), kTol);
}

TEST(GradCheckTest, BatchTransposeChain) {
  Rng rng(8);
  Var a = RandomVar({2, 3, 4}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(BatchTranspose(v[0]), 14);
  };
  EXPECT_LT(GradCheck(fn, {a}), kTol);
}

TEST(GradCheckTest, ReshapeChain) {
  Rng rng(9);
  Var a = RandomVar({2, 6}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Reshape(v[0], {3, 4}), 15);
  };
  EXPECT_LT(GradCheck(fn, {a}), kTol);
}

TEST(GradCheckTest, ConcatAndSlice) {
  Rng rng(10);
  Var a = RandomVar({2, 2}, &rng);
  Var b = RandomVar({2, 3}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    Var c = Concat({v[0], v[1]}, 1);
    return WeightedSum(Slice(c, 1, 1, 3), 16);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, SoftmaxLastDim) {
  Rng rng(11);
  Var a = RandomVar({3, 5}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(SoftmaxAlong(v[0], 1), 17);
  };
  EXPECT_LT(GradCheck(fn, {a}), kTol);
}

TEST(GradCheckTest, SoftmaxMiddleDimOf3D) {
  Rng rng(12);
  Var a = RandomVar({2, 4, 3}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(SoftmaxAlong(v[0], 1), 18);
  };
  EXPECT_LT(GradCheck(fn, {a}), kTol);
}

TEST(GradCheckTest, SumAlongKeepAndDrop) {
  Rng rng(13);
  Var a = RandomVar({3, 4}, &rng);
  auto fn_keep = [](const std::vector<Var>& v) {
    return WeightedSum(SumAlong(v[0], 0, true), 19);
  };
  EXPECT_LT(GradCheck(fn_keep, {a}), kTol);
  auto fn_drop = [](const std::vector<Var>& v) {
    return WeightedSum(SumAlong(v[0], 1, false), 20);
  };
  EXPECT_LT(GradCheck(fn_drop, {a}), kTol);
}

TEST(GradCheckTest, MeanAll) {
  Rng rng(14);
  Var a = RandomVar({4, 4}, &rng);
  auto fn = [](const std::vector<Var>& v) { return MeanAll(Square(v[0])); };
  EXPECT_LT(GradCheck(fn, {a}), kTol);
}

TEST(GradCheckTest, GatherWithDuplicates) {
  Rng rng(15);
  Var m = RandomVar({5, 3}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Gather(v[0], {0, 2, 2, 4}), 21);
  };
  EXPECT_LT(GradCheck(fn, {m}), kTol);
}

TEST(GradCheckTest, ScatterWithCollisions) {
  Rng rng(16);
  Var s = RandomVar({4, 3}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Scatter(v[0], {1, 1, 0, 2}, 3), 22);
  };
  EXPECT_LT(GradCheck(fn, {s}), kTol);
}

TEST(GradCheckTest, LayerNormAffine) {
  Rng rng(17);
  Var x = RandomVar({3, 6}, &rng);
  Var gamma = RandomVar({6}, &rng);
  Var beta = RandomVar({6}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(LayerNorm(v[0], v[1], v[2]), 23);
  };
  EXPECT_LT(GradCheck(fn, {x, gamma, beta}), 5e-2);
}

TEST(GradCheckTest, LayerNormNoAffine) {
  Rng rng(18);
  Var x = RandomVar({2, 8}, &rng);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(LayerNormNoAffine(v[0]), 24);
  };
  EXPECT_LT(GradCheck(fn, {x}), 5e-2);
}

TEST(GradCheckTest, WhereConst) {
  Rng rng(19);
  Var a = RandomVar({3, 3}, &rng);
  Var b = RandomVar({3, 3}, &rng);
  Tensor mask(Shape{3, 3});
  for (int64_t i = 0; i < 9; ++i) mask.data()[i] = (i % 2 == 0) ? 1.0f : 0.0f;
  auto fn = [mask](const std::vector<Var>& v) {
    return WeightedSum(WhereConst(mask, v[0], v[1]), 25);
  };
  EXPECT_LT(GradCheck(fn, {a, b}), kTol);
}

TEST(GradCheckTest, Conv2dAllInputs) {
  Rng rng(20);
  Var img = RandomVar({2, 2, 4, 4}, &rng, 0.5);
  Var w = RandomVar({3, 2, 3, 3}, &rng, 0.5);
  Var bias = RandomVar({3}, &rng, 0.5);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Conv2d(v[0], v[1], v[2], 1), 26);
  };
  EXPECT_LT(GradCheck(fn, {img, w, bias}), 5e-2);
}

TEST(GradCheckTest, BceWithLogits) {
  Rng rng(21);
  Var logits = RandomVar({3, 4}, &rng);
  Tensor targets(Shape{3, 4});
  for (int64_t i = 0; i < 12; ++i) {
    targets.data()[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  auto fn = [targets](const std::vector<Var>& v) {
    return BceWithLogitsMean(v[0], targets);
  };
  EXPECT_LT(GradCheck(fn, {logits}), kTol);
}

TEST(GradCheckTest, AbsAwayFromKink) {
  Rng rng(31);
  Var x = RandomVar({3, 4}, &rng);
  Tensor& t = x.mutable_value();
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (std::fabs(t.data()[i]) < 0.2f) t.data()[i] = -0.5f;
  }
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Abs(v[0]), 29);
  };
  EXPECT_LT(GradCheck(fn, {x}), kTol);
}

TEST(GradCheckTest, CoAttentionApplyFused) {
  Rng rng(32);
  Var x = RandomVar({2, 5}, &rng);
  Var a = RandomVar({2, 5}, &rng);
  Var b = RandomVar({2, 5}, &rng);
  Var u(Tensor::Scalar(0.6f), true);
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(CoAttentionApply(v[0], v[1], v[2], v[3]), 30);
  };
  EXPECT_LT(GradCheck(fn, {x, a, b, u}, 1e-2), 8e-2);
}

TEST(GradCheckTest, ReluAwayFromKink) {
  Rng rng(22);
  Var x = RandomVar({4, 4}, &rng);
  // Push values away from 0 where relu is non-differentiable.
  Tensor& t = x.mutable_value();
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (std::fabs(t.data()[i]) < 0.2f) t.data()[i] = 0.5f;
  }
  auto fn = [](const std::vector<Var>& v) {
    return WeightedSum(Relu(v[0]), 27);
  };
  EXPECT_LT(GradCheck(fn, {x}), kTol);
}

TEST(GradCheckTest, DeepComposition) {
  // A CamE-like composite: sigmoid projections, batched outer product,
  // softmax attention, weighted sums — the exact pattern TCA uses.
  Rng rng(23);
  Var q = RandomVar({2, 4}, &rng);
  Var d = RandomVar({2, 4}, &rng);
  Var w = RandomVar({4, 4}, &rng, 0.5);
  auto fn = [](const std::vector<Var>& v) {
    Var pq = Sigmoid(MatMul(v[0], v[2]));             // [2,4]
    Var pd = Sigmoid(MatMul(v[1], v[2]));             // [2,4]
    Var q3 = Reshape(pq, {2, 4, 1});
    Var d3 = Reshape(pd, {2, 1, 4});
    Var aff = BatchMatMul(q3, d3);                    // [2,4,4]
    Var att = SoftmaxAlong(aff, 1);
    Var out = BatchMatMul(Reshape(v[0], {2, 1, 4}), att);  // [2,1,4]
    return WeightedSum(out, 28);
  };
  EXPECT_LT(GradCheck(fn, {q, d, w}), 5e-2);
}

}  // namespace
}  // namespace came::ag
