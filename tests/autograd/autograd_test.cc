#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/random.h"
#include "tensor/tensor_ops.h"

namespace came::ag {
namespace {

namespace ts = came::tensor;

Var RandomVar(Shape shape, Rng* rng, bool requires_grad = true) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Normal());
  }
  return Var(std::move(t), requires_grad);
}

TEST(VariableTest, LeafProperties) {
  Var v(Tensor::Full({2, 2}, 1.0f), true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.grad().numel(), 4);  // zeros placeholder
}

TEST(VariableTest, SimpleChainGradient) {
  // loss = sum(2 * x) -> dx = 2.
  Var x(Tensor::Full({3}, 1.0f), true);
  Var loss = SumAll(Scale(x, 2.0f));
  loss.Backward();
  ASSERT_TRUE(x.has_grad());
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad().data()[i], 2.0f);
}

TEST(VariableTest, GradientAccumulatesAcrossUses) {
  // loss = sum(x + x) -> dx = 2.
  Var x(Tensor::Full({2}, 1.0f), true);
  Var loss = SumAll(Add(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 2.0f);
}

TEST(VariableTest, DetachBlocksGradient) {
  Var x(Tensor::Full({2}, 3.0f), true);
  Var y = Mul(x.Detach(), x);  // d/dx = x.detach() = 3
  SumAll(y).Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 3.0f);
}

TEST(VariableTest, NoGradGuardSkipsTape) {
  Var x(Tensor::Full({2}, 1.0f), true);
  {
    NoGradGuard guard;
    Var y = Scale(x, 2.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  Var z = Scale(x, 2.0f);
  EXPECT_TRUE(z.requires_grad());
}

TEST(VariableTest, BackwardRequiresScalar) {
  Var x(Tensor::Full({2}, 1.0f), true);
  Var y = Scale(x, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(VariableTest, ZeroGradClears) {
  Var x(Tensor::Full({2}, 1.0f), true);
  SumAll(x).Backward();
  EXPECT_TRUE(x.has_grad());
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, DiamondGraphAccumulates) {
  // y = x*x ; loss = sum(y + y) -> dx = 4x.
  Var x(Tensor::Full({2}, 3.0f), true);
  Var y = Mul(x, x);
  SumAll(Add(y, y)).Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 12.0f);
}

TEST(OpsTest, MatMulForwardMatchesKernel) {
  Rng rng(1);
  Var a = RandomVar({2, 3}, &rng);
  Var b = RandomVar({3, 4}, &rng);
  Var c = MatMul(a, b);
  Tensor expected = ts::MatMul(a.value(), b.value());
  for (int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_FLOAT_EQ(c.value().data()[i], expected.data()[i]);
  }
}

TEST(OpsTest, SoftmaxRowsSumToOneAfterOp) {
  Rng rng(2);
  Var a = RandomVar({3, 5}, &rng);
  Var s = SoftmaxAlong(a, 1);
  for (int64_t r = 0; r < 3; ++r) {
    double acc = 0.0;
    for (int64_t c = 0; c < 5; ++c) acc += s.value().at({r, c});
    EXPECT_NEAR(acc, 1.0, 1e-5);
  }
}

TEST(OpsTest, GatherForward) {
  Var m(Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6}), true);
  Var g = Gather(m, {2, 0});
  EXPECT_EQ(g.value().at({0, 1}), 6.0f);
  EXPECT_EQ(g.value().at({1, 0}), 1.0f);
}

TEST(OpsTest, GatherBackwardScattersIntoRows) {
  Var m(Tensor::Zeros({3, 2}), true);
  Var g = Gather(m, {1, 1, 2});
  SumAll(g).Backward();
  EXPECT_FLOAT_EQ(m.grad().at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(m.grad().at({1, 0}), 2.0f);  // two lookups of row 1
  EXPECT_FLOAT_EQ(m.grad().at({2, 1}), 1.0f);
}

TEST(OpsTest, DropoutEvalIsIdentity) {
  Rng rng(3);
  Var x(Tensor::Full({10}, 1.0f), true);
  Var y = Dropout(x, 0.5f, &rng, /*training=*/false);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(y.value().data()[i], 1.0f);
}

TEST(OpsTest, DropoutTrainZerosAndRescales) {
  Rng rng(4);
  Var x(Tensor::Full({1000}, 1.0f), true);
  Var y = Dropout(x, 0.5f, &rng, /*training=*/true);
  int zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    const float v = y.value().data()[i];
    EXPECT_TRUE(v == 0.0f || v == 2.0f);
    zeros += v == 0.0f;
  }
  EXPECT_NEAR(zeros, 500, 75);
}

TEST(OpsTest, WhereConstRoutesGradient) {
  Tensor mask = Tensor::FromVector({4}, {1, 0, 1, 0});
  Var a(Tensor::Full({4}, 1.0f), true);
  Var b(Tensor::Full({4}, 5.0f), true);
  Var w = WhereConst(mask, a, b);
  SumAll(w).Backward();
  EXPECT_FLOAT_EQ(a.grad().data()[0], 1.0f);
  EXPECT_FLOAT_EQ(a.grad().data()[1], 0.0f);
  EXPECT_FLOAT_EQ(b.grad().data()[0], 0.0f);
  EXPECT_FLOAT_EQ(b.grad().data()[1], 1.0f);
}

TEST(OpsTest, BceWithLogitsMatchesManual) {
  Var logits(Tensor::FromVector({2}, {0.0f, 2.0f}), true);
  Tensor targets = Tensor::FromVector({2}, {1.0f, 0.0f});
  Var loss = BceWithLogitsMean(logits, targets);
  // manual: [-log(0.5), -log(1 - sigmoid(2))] averaged
  const double l0 = -std::log(0.5);
  const double l1 = -std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0)));
  EXPECT_NEAR(loss.value().data()[0], (l0 + l1) / 2.0, 1e-5);
  loss.Backward();
  EXPECT_NEAR(logits.grad().data()[0], (0.5 - 1.0) / 2.0, 1e-5);
}

TEST(OpsTest, LayerNormNormalisesRows) {
  Rng rng(5);
  Var x = RandomVar({4, 8}, &rng);
  Var y = LayerNormNoAffine(x);
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int64_t c = 0; c < 8; ++c) mean += y.value().at({r, c});
    mean /= 8;
    for (int64_t c = 0; c < 8; ++c) {
      const double d = y.value().at({r, c}) - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(OpsTest, ConcatSliceRoundTripGradient) {
  Var a(Tensor::Full({2, 2}, 1.0f), true);
  Var b(Tensor::Full({2, 3}, 2.0f), true);
  Var c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 5}));
  // Only the slice covering `b` contributes to the loss.
  Var s = Slice(c, 1, 2, 3);
  SumAll(s).Backward();
  EXPECT_FLOAT_EQ(a.grad().data()[0], 0.0f);
  EXPECT_FLOAT_EQ(b.grad().data()[0], 1.0f);
}

TEST(OpsTest, ScatterForwardAddsDuplicates) {
  Var src(Tensor::FromVector({3, 1}, {1, 2, 3}), true);
  Var out = Scatter(src, {0, 0, 1}, 2);
  EXPECT_FLOAT_EQ(out.value().at({0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(out.value().at({1, 0}), 3.0f);
}

TEST(OpsTest, Conv2dKnownResult) {
  // 2x2 image, 1 filter of ones 2x2, no padding -> sum of image.
  Var img(Tensor::FromVector({1, 1, 2, 2}, {1, 2, 3, 4}), true);
  Var w(Tensor::Full({1, 1, 2, 2}, 1.0f), true);
  Var bias(Tensor::Full({1}, 0.5f), true);
  Var out = Conv2d(img, w, bias, /*pad=*/0);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out.value().data()[0], 10.5f);
}

TEST(OpsTest, Conv2dPaddedShape) {
  Var img(Tensor::Zeros({2, 3, 5, 4}), false);
  Var w(Tensor::Zeros({6, 3, 3, 3}), true);
  Var out = Conv2d(img, w, Var(), /*pad=*/1);
  EXPECT_EQ(out.shape(), (Shape{2, 6, 5, 4}));
}

TEST(OpsTest, MeanAlongDividesByExtent) {
  Var x(Tensor::FromVector({2, 2}, {2, 4, 6, 8}), true);
  Var m = MeanAlong(x, 1, false);
  EXPECT_FLOAT_EQ(m.value().data()[0], 3.0f);
  EXPECT_FLOAT_EQ(m.value().data()[1], 7.0f);
}

}  // namespace
}  // namespace came::ag
