// Golden end-to-end regression: the quickstart pipeline (synthetic BKG ->
// frozen features -> CamE -> filtered evaluation) at a fixed seed must
// keep producing the pinned metrics. A drift here means something changed
// the numerics of the whole stack — intentionally or not.
//
// Registered with ctest under the `slow` label and pinned to the scalar
// GEMM kernel (CAME_GEMM_KERNEL=scalar in the test's environment), so the
// numbers do not depend on which SIMD path the host happens to dispatch.
#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

namespace came {
namespace {

TEST(GoldenQuickstartTest, TwoEpochCamEMetricsStayPinned) {
  datagen::GeneratedBkg bkg =
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05));
  encoders::FeatureBankConfig fb;
  encoders::FeatureBank bank = BuildFeatureBank(bkg, fb);

  baselines::ModelContext ctx;
  ctx.num_entities = bkg.dataset.num_entities();
  ctx.num_relations = bkg.dataset.num_relations_with_inverses();
  ctx.features = &bank;
  ctx.train_triples = &bkg.dataset.train;
  baselines::ZooOptions zoo;
  zoo.dim = 32;
  zoo.came.fusion_dim = 32;
  zoo.came.reshape_h = 4;
  auto model = baselines::CreateModel("CamE", ctx, zoo);

  train::TrainConfig cfg;
  cfg.epochs = 2;
  train::Trainer trainer(model.get(), bkg.dataset, cfg);
  trainer.Train();

  eval::Evaluator evaluator(bkg.dataset);
  eval::EvalConfig ec;
  ec.max_triples = 300;
  const eval::Metrics m =
      evaluator.Evaluate(model.get(), bkg.dataset.test, ec);

  // Pinned from a scalar-kernel run at the default seeds (two epochs is a
  // smoke-level budget, so absolute numbers are small). The tolerance
  // (percentage points) absorbs libm differences across hosts while still
  // catching real regressions.
  EXPECT_NEAR(m.Mrr(), 4.51, 3.0);
  EXPECT_NEAR(m.Hits1(), 0.50, 3.0);
  EXPECT_NEAR(m.Hits3(), 2.00, 3.0);
  EXPECT_NEAR(m.Hits10(), 9.50, 4.0);
  EXPECT_EQ(m.count, 200);  // the whole test split, both directions
}

}  // namespace
}  // namespace came
