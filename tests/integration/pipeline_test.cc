// End-to-end integration tests: generator -> encoders -> model zoo ->
// trainer -> evaluator -> checkpointing, exercised the way the benches
// and examples drive the library.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/model_zoo.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "train/convergence.h"
#include "train/trainer.h"

namespace came {
namespace {

struct Pipeline {
  datagen::GeneratedBkg bkg;
  encoders::FeatureBank bank;

  baselines::ModelContext Context() const {
    return {bkg.dataset.num_entities(),
            bkg.dataset.num_relations_with_inverses(), &bank,
            &bkg.dataset.train, 17};
  }
};

Pipeline MakePipeline(bool omaha) {
  datagen::GeneratedBkg bkg = datagen::GenerateBkg(
      omaha ? datagen::BkgConfig::OmahaMmSynth(0.08)
            : datagen::BkgConfig::DrkgMmSynth(0.08));
  encoders::FeatureBankConfig cfg;
  cfg.gin_pretrain_epochs = 1;
  cfg.gin_pretrain_sample = 20;
  encoders::FeatureBank bank = BuildFeatureBank(bkg, cfg);
  return {std::move(bkg), std::move(bank)};
}

baselines::ZooOptions SmallZoo() {
  baselines::ZooOptions zoo;
  zoo.dim = 16;
  zoo.conv.reshape_h = 4;
  zoo.conv.filters = 8;
  zoo.came.fusion_dim = 16;
  zoo.came.reshape_h = 4;
  zoo.came.conv_filters = 8;
  return zoo;
}

class RegimePipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RegimePipelineTest, TrainsEvaluatesAndBeatsRandomRanks) {
  Pipeline p = MakePipeline(false);
  auto model = baselines::CreateModel(GetParam(), p.Context(), SmallZoo());
  train::TrainConfig cfg;
  cfg.epochs = 12;
  cfg = baselines::RecommendedTrainConfig(GetParam(), cfg);
  train::Trainer trainer(model.get(), p.bkg.dataset, cfg);
  trainer.Train();

  eval::Evaluator evaluator(p.bkg.dataset);
  eval::EvalConfig ec;
  ec.max_triples = 120;
  const eval::Metrics m =
      evaluator.Evaluate(model.get(), p.bkg.dataset.test, ec);
  // A trained model must rank far better than the random-expectation
  // mean rank N/2.
  EXPECT_LT(m.Mr(), p.bkg.dataset.num_entities() / 2.0) << GetParam();
  EXPECT_GT(m.Hits10(), 5.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Regimes, RegimePipelineTest,
                         ::testing::Values("DistMult",  // neg sampling
                                           "a-RotatE",  // self-adversarial
                                           "ConvE"));   // 1-to-N

TEST(PipelineTest, CamEOnOmahaWithoutMolecules) {
  Pipeline p = MakePipeline(true);
  auto model = baselines::CreateModel("CamE", p.Context(), SmallZoo());
  train::TrainConfig cfg;
  cfg.epochs = 3;
  train::Trainer trainer(model.get(), p.bkg.dataset, cfg);
  const float first = trainer.RunEpoch();
  trainer.RunEpoch();
  const float last = trainer.RunEpoch();
  EXPECT_LT(last, first);
  eval::Evaluator evaluator(p.bkg.dataset);
  eval::EvalConfig ec;
  ec.max_triples = 50;
  const eval::Metrics m =
      evaluator.Evaluate(model.get(), p.bkg.dataset.test, ec);
  EXPECT_GT(m.Mrr(), 0.0);
}

TEST(PipelineTest, CheckpointRoundTripPreservesScores) {
  Pipeline p = MakePipeline(false);
  auto model = baselines::CreateModel("CamE", p.Context(), SmallZoo());
  train::TrainConfig cfg;
  cfg.epochs = 2;
  train::Trainer trainer(model.get(), p.bkg.dataset, cfg);
  trainer.Train();

  const std::string path = "/tmp/came_pipeline_ckpt.bin";
  ASSERT_TRUE(model->SaveParameters(path).ok());

  auto fresh = baselines::CreateModel("CamE", p.Context(), SmallZoo());
  ASSERT_TRUE(fresh->LoadParameters(path).ok());
  std::remove(path.c_str());

  model->SetTraining(false);
  fresh->SetTraining(false);
  ag::NoGradGuard guard;
  ag::Var a = model->ScoreAllTails({0, 1}, {0, 1});
  ag::Var b = fresh->ScoreAllTails({0, 1}, {0, 1});
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.value().data()[i], b.value().data()[i]);
  }
}

TEST(PipelineTest, ConvergenceCurveMonotoneInTime) {
  Pipeline p = MakePipeline(false);
  auto model = baselines::CreateModel("DistMult", p.Context(), SmallZoo());
  train::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.margin = 0.0f;
  eval::Evaluator evaluator(p.bkg.dataset);
  auto curve = train::TrainWithConvergence(model.get(), p.bkg.dataset, cfg,
                                           evaluator, p.bkg.dataset.test,
                                           /*eval_sample=*/60,
                                           /*eval_every=*/2);
  ASSERT_GE(curve.size(), 3u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].seconds, curve[i - 1].seconds);
    EXPECT_GT(curve[i].epoch, curve[i - 1].epoch);
  }
}

TEST(PipelineTest, DatasetRoundTripThenTrain) {
  Pipeline p = MakePipeline(false);
  const std::string dir = "/tmp/came_pipeline_tsv";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(p.bkg.dataset.SaveTsv(dir).ok());
  auto loaded = kg::Dataset::LoadTsv(dir, "reloaded");
  ASSERT_TRUE(loaded.ok());
  std::filesystem::remove_all(dir);

  baselines::ModelContext ctx = p.Context();
  ctx.train_triples = &loaded.value().train;
  auto model = baselines::CreateModel("TransE", ctx, SmallZoo());
  train::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.margin = 2.0f;
  train::Trainer trainer(model.get(), loaded.value(), cfg);
  const float first = trainer.RunEpoch();
  const float last = trainer.RunEpoch();
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace came
