#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "common/random.h"
#include "nn/init.h"
#include "optim/optimizer.h"

namespace came::optim {
namespace {

// Minimises f(x) = ||x - target||^2 and checks convergence.
double OptimiseQuadratic(Optimizer* opt, ag::Var x,
                         const tensor::Tensor& target, int steps) {
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    ag::Var loss = ag::SumAll(ag::Square(ag::Sub(x, ag::Const(target))));
    loss.Backward();
    opt->Step();
  }
  double err = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    err = std::max(err, std::fabs(static_cast<double>(x.value().data()[i]) -
                                  target.data()[i]));
  }
  return err;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  ag::Var x(tensor::Tensor::Zeros({4}), true);
  tensor::Tensor target = tensor::Tensor::FromVector({4}, {1, -2, 3, 0.5});
  Sgd opt({x}, 0.1f);
  EXPECT_LT(OptimiseQuadratic(&opt, x, target, 100), 1e-3);
}

TEST(SgdTest, MomentumConvergesFaster) {
  tensor::Tensor target = tensor::Tensor::Full({4}, 2.0f);
  ag::Var x1(tensor::Tensor::Zeros({4}), true);
  ag::Var x2(tensor::Tensor::Zeros({4}), true);
  Sgd plain({x1}, 0.02f);
  Sgd momentum({x2}, 0.02f, 0.9f);
  const double e_plain = OptimiseQuadratic(&plain, x1, target, 30);
  const double e_momentum = OptimiseQuadratic(&momentum, x2, target, 30);
  EXPECT_LT(e_momentum, e_plain);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ag::Var x(tensor::Tensor::Zeros({4}), true);
  tensor::Tensor target = tensor::Tensor::FromVector({4}, {1, -2, 3, 0.5});
  Adam opt({x}, 0.1f);
  EXPECT_LT(OptimiseQuadratic(&opt, x, target, 300), 1e-2);
}

TEST(AdamTest, FirstStepIsLrSized) {
  // Bias correction makes the first Adam step ~lr * sign(grad).
  ag::Var x(tensor::Tensor::Zeros({1}), true);
  Adam opt({x}, 0.5f);
  ag::SumAll(ag::Scale(x, 3.0f)).Backward();
  opt.Step();
  EXPECT_NEAR(x.value().data()[0], -0.5f, 1e-3);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  ag::Var a(tensor::Tensor::Full({1}, 1.0f), true);
  ag::Var b(tensor::Tensor::Full({1}, 1.0f), true);
  Adam opt({a, b}, 0.1f);
  ag::SumAll(ag::Square(a)).Backward();  // only a gets a gradient
  opt.Step();
  EXPECT_NE(a.value().data()[0], 1.0f);
  EXPECT_EQ(b.value().data()[0], 1.0f);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  ag::Var x(tensor::Tensor::Full({1}, 10.0f), true);
  Adam opt({x}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    // Constant-zero loss gradient: only decay acts.
    ag::Var loss = ag::SumAll(ag::Scale(x, 0.0f));
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(x.value().data()[0], 7.0f);
}

TEST(AdamTest, StateRoundTripTakesIdenticalNextStep) {
  // Two optimizers over identically-valued parameters: the donor takes a
  // few real steps, then its (t, m, v) state is transplanted into a fresh
  // Adam. Given the same gradient, the next update must match bitwise —
  // the moments and the bias-correction step count all feed the step size.
  auto make_param = [] {
    return ag::Var(tensor::Tensor::FromVector({4}, {1, -2, 3, 0.5}), true);
  };
  auto grad_step = [](ag::Var x, Adam* opt) {
    opt->ZeroGrad();
    // Non-uniform gradients so the per-element moments actually differ.
    ag::Var coeffs =
        ag::Const(tensor::Tensor::FromVector({4}, {0.3f, -1.7f, 2.1f, 0.9f}));
    ag::SumAll(ag::Mul(ag::Square(x), coeffs)).Backward();
    opt->Step();
  };

  ag::Var a = make_param();
  Adam donor({a}, 0.05f);
  for (int i = 0; i < 5; ++i) grad_step(a, &donor);

  ag::Var b(a.value().Clone(), true);
  Adam restored({b}, 0.05f);
  const Status st = restored.RestoreState(donor.step_count(),
                                          donor.first_moments(),
                                          donor.second_moments());
  ASSERT_TRUE(st.ok()) << st.ToString();

  grad_step(a, &donor);
  grad_step(b, &restored);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(a.value().data()[j], b.value().data()[j]) << "element " << j;
  }
}

TEST(AdamTest, RestoreStateIsCopiedNotAliased) {
  ag::Var a(tensor::Tensor::Zeros({2}), true);
  ag::Var b(tensor::Tensor::Zeros({2}), true);
  Adam donor({a}, 0.1f);
  ag::SumAll(ag::Square(a)).Backward();
  donor.Step();
  Adam restored({b}, 0.1f);
  ASSERT_TRUE(restored
                  .RestoreState(donor.step_count(), donor.first_moments(),
                                donor.second_moments())
                  .ok());
  // Further donor steps must not leak into the restored optimizer.
  EXPECT_NE(restored.first_moments()[0].data(),
            donor.first_moments()[0].data());
}

TEST(AdamTest, RestoreStateRejectsBadShapesAndCounts) {
  ag::Var x(tensor::Tensor::Zeros({3}), true);
  Adam opt({x}, 0.1f);
  // Count mismatch.
  EXPECT_FALSE(opt.RestoreState(1, {}, {}).ok());
  // Shape mismatch.
  std::vector<tensor::Tensor> wrong = {tensor::Tensor::Zeros({4})};
  EXPECT_FALSE(opt.RestoreState(1, wrong, wrong).ok());
  // Negative step count.
  std::vector<tensor::Tensor> right = {tensor::Tensor::Zeros({3})};
  EXPECT_FALSE(opt.RestoreState(-1, right, right).ok());
  // A rejected restore leaves the optimizer untouched.
  EXPECT_EQ(opt.step_count(), 0);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  ag::Var x(tensor::Tensor::Zeros({4}), true);
  ag::SumAll(ag::Scale(x, 10.0f)).Backward();  // grad = 10 per element
  const float norm = ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(norm, 20.0f, 1e-3);  // sqrt(4 * 100)
  double clipped = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    clipped += static_cast<double>(x.grad().data()[i]) * x.grad().data()[i];
  }
  EXPECT_NEAR(std::sqrt(clipped), 1.0, 1e-3);
}

TEST(ClipGradNormTest, ClipsTheStoredAccumulatorNotACopy) {
  // Regression: clipping used to mutate the tensor returned by grad(),
  // silently relying on it aliasing the stored accumulator. Read the
  // stored gradients back through the autograd state itself and assert
  // their global norm actually came down to max_norm.
  ag::Var x(tensor::Tensor::Zeros({8}), true);
  ag::Var y(tensor::Tensor::Zeros({4}), true);
  ag::Add(ag::SumAll(ag::Scale(x, 5.0f)), ag::SumAll(ag::Scale(y, -7.0f)))
      .Backward();
  const float max_norm = 2.0f;
  ClipGradNorm({x, y}, max_norm);
  double stored = 0.0;
  for (const ag::Var& v : {x, y}) {
    const tensor::Tensor& g = v.state()->grad;  // the accumulator itself
    for (int64_t j = 0; j < g.numel(); ++j) {
      stored += static_cast<double>(g.data()[j]) * g.data()[j];
    }
  }
  EXPECT_NEAR(std::sqrt(stored), max_norm, 1e-4);
  // mutable_grad() must hand out that same accumulator, not a copy.
  EXPECT_EQ(x.mutable_grad().data(), x.state()->grad.data());
}

TEST(ClipGradNormTest, MutableGradBeforeBackwardDies) {
  ag::Var x(tensor::Tensor::Zeros({2}), true);
  EXPECT_DEATH(x.mutable_grad(), "backward");
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  ag::Var x(tensor::Tensor::Zeros({2}), true);
  ag::SumAll(x).Backward();  // grad = 1 each, norm sqrt(2)
  ClipGradNorm({x}, 10.0f);
  EXPECT_EQ(x.grad().data()[0], 1.0f);
}

TEST(OptimizerTest, ZeroGradResetsAll) {
  ag::Var x(tensor::Tensor::Zeros({2}), true);
  Adam opt({x}, 0.1f);
  ag::SumAll(x).Backward();
  EXPECT_TRUE(x.has_grad());
  opt.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(OptimizerTest, StepReadsButNeverMutatesTheAccumulator) {
  // Pins the read-only contract from the grad() call-site audit: Sgd
  // (with momentum + weight decay) and Adam may read the stored gradient
  // during Step() but must not write through it — a Step that scaled or
  // zeroed the accumulator in place would corrupt any later consumer
  // (gradient logging, clipping, accumulation across micro-batches).
  for (int use_adam = 0; use_adam <= 1; ++use_adam) {
    ag::Var x(tensor::Tensor::Full({6}, 0.5f), true);
    ag::SumAll(ag::Square(x)).Backward();
    const tensor::Tensor before = x.state()->grad.Clone();
    if (use_adam) {
      Adam opt({x}, 0.05f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.01f);
      opt.Step();
    } else {
      Sgd opt({x}, 0.05f, /*momentum=*/0.9f, /*weight_decay=*/0.01f);
      opt.Step();
    }
    const tensor::Tensor& after = x.state()->grad;
    ASSERT_EQ(after.numel(), before.numel());
    for (int64_t i = 0; i < after.numel(); ++i) {
      EXPECT_EQ(after.data()[i], before.data()[i])
          << (use_adam ? "Adam" : "Sgd") << " mutated the accumulator at "
          << i;
    }
  }
}

TEST(OptimizerTest, RejectsNonTrainableParams) {
  ag::Var x(tensor::Tensor::Zeros({2}), false);
  EXPECT_DEATH(Adam({x}, 0.1f), "requires_grad");
}

}  // namespace
}  // namespace came::optim
