// Regression tests for the evaluation inference path:
//   * an Evaluate run must record ZERO autograd tape nodes (the forwards
//     dispatch forward-only — the bug this pins down is guard-less eval
//     paths silently building full tapes);
//   * a warmed evaluator must run entirely out of the tensor pool (zero
//     pool misses on the second identical pass);
//   * eval mode must be bitwise deterministic (Dropout disabled), while
//     training mode visibly is not — proving mode propagation reaches
//     the leaves.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "autograd/variable.h"
#include "core/came_model.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "tensor/storage_pool.h"

namespace came::eval {
namespace {

class EvaluatorInferTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bkg_ = new datagen::GeneratedBkg(
        datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05)));
    encoders::FeatureBankConfig cfg;
    cfg.gin_pretrain_epochs = 0;
    bank_ = new encoders::FeatureBank(BuildFeatureBank(*bkg_, cfg));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete bkg_;
  }

  static baselines::ModelContext Context() {
    return {bkg_->dataset.num_entities(),
            bkg_->dataset.num_relations_with_inverses(), bank_,
            &bkg_->dataset.train, 5};
  }
  static core::CamEConfig Config() {
    core::CamEConfig cfg;
    cfg.embed_dim = 16;
    cfg.fusion_dim = 16;
    cfg.reshape_h = 4;
    cfg.conv_filters = 8;
    cfg.dropout = 0.3f;  // must be live in training, dead in eval
    return cfg;
  }
  static EvalConfig QuickEval() {
    EvalConfig ec;
    ec.max_triples = 40;
    return ec;
  }

  static datagen::GeneratedBkg* bkg_;
  static encoders::FeatureBank* bank_;
};

datagen::GeneratedBkg* EvaluatorInferTest::bkg_ = nullptr;
encoders::FeatureBank* EvaluatorInferTest::bank_ = nullptr;

TEST_F(EvaluatorInferTest, EvaluateRecordsZeroTapeNodes) {
  core::CamE model(Context(), Config());
  const Evaluator evaluator(bkg_->dataset);
  const int64_t nodes_before = ag::TapeNodesRecordedThisThread();
  const int64_t dispatches_before = ag::NoTapeDispatchesThisThread();
  const Metrics m =
      evaluator.Evaluate(&model, bkg_->dataset.test, QuickEval());
  ASSERT_GT(m.count, 0);
  // The whole run is under NoTapeGuard: not a single tape node, and the
  // op dispatches all landed on the forward-only path.
  EXPECT_EQ(ag::TapeNodesRecordedThisThread(), nodes_before);
  EXPECT_GT(ag::NoTapeDispatchesThisThread(), dispatches_before);
}

TEST_F(EvaluatorInferTest, WarmedEvaluateHasZeroPoolMisses) {
  if (tensor::pool::ActiveMode() != tensor::pool::Mode::kOn) {
    GTEST_SKIP() << "tensor pool not in recycle mode";
  }
  core::CamE model(Context(), Config());
  const Evaluator evaluator(bkg_->dataset);
  // First pass populates the free lists with every buffer shape the eval
  // batches need.
  (void)evaluator.Evaluate(&model, bkg_->dataset.test, QuickEval());
  const tensor::pool::Stats warm = tensor::pool::GetStats();
  (void)evaluator.Evaluate(&model, bkg_->dataset.test, QuickEval());
  const tensor::pool::Stats after = tensor::pool::GetStats();
  EXPECT_EQ(after.misses - warm.misses, 0)
      << "warmed eval fell through to the heap " << (after.misses - warm.misses)
      << " time(s) in " << (after.acquires - warm.acquires) << " acquires";
  EXPECT_GT(after.acquires, warm.acquires);
}

TEST_F(EvaluatorInferTest, EvalModeIsBitwiseDeterministic) {
  core::CamE model(Context(), Config());
  model.SetTraining(false);
  const std::vector<int64_t> heads = {0, 2, 5};
  const std::vector<int64_t> rels = {0, 1, 0};
  ag::NoGradGuard no_grad;
  const tensor::Tensor a = model.ScoreAllTails(heads, rels).value().Clone();
  const tensor::Tensor b = model.ScoreAllTails(heads, rels).value().Clone();
  ASSERT_EQ(a.numel(), b.numel());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0)
      << "eval-mode forward is not deterministic — Dropout (or another "
         "stochastic layer) is still live in eval mode";
}

TEST_F(EvaluatorInferTest, TrainingModeDropoutIsLive) {
  core::CamE model(Context(), Config());
  model.SetTraining(true);
  const std::vector<int64_t> heads = {0, 2, 5};
  const std::vector<int64_t> rels = {0, 1, 0};
  const tensor::Tensor a = model.ScoreAllTails(heads, rels).value().Clone();
  const tensor::Tensor b = model.ScoreAllTails(heads, rels).value().Clone();
  ASSERT_EQ(a.numel(), b.numel());
  // Two training forwards draw different dropout masks; if they agree
  // bitwise, SetTraining(true) never reached the Dropout layer.
  EXPECT_NE(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0)
      << "training-mode forward is deterministic — dropout inactive";
}

TEST_F(EvaluatorInferTest, RepeatedEvaluationsProduceIdenticalMetrics) {
  core::CamE model(Context(), Config());
  const Evaluator evaluator(bkg_->dataset);
  const Metrics a =
      evaluator.Evaluate(&model, bkg_->dataset.test, QuickEval());
  const Metrics b =
      evaluator.Evaluate(&model, bkg_->dataset.test, QuickEval());
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.rank_sum, b.rank_sum);
  EXPECT_EQ(a.reciprocal_sum, b.reciprocal_sum);
  EXPECT_EQ(a.hits1, b.hits1);
  EXPECT_EQ(a.hits3, b.hits3);
  EXPECT_EQ(a.hits10, b.hits10);
}

}  // namespace
}  // namespace came::eval
