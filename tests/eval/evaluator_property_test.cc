// Property tests for the filtered ranking protocol: the Evaluator's
// aggregate metrics must match a brute-force reimplementation for
// arbitrary score landscapes, seeds, and dataset shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "baselines/kgc_model.h"
#include "datagen/bkg_generator.h"
#include "eval/evaluator.h"
#include "nn/init.h"
#include "tensor/storage_pool.h"

namespace came::eval {
namespace {

// A model with a fixed random score table S[h][r][t] := hash-based.
class FixedScoreModel : public baselines::KgcModel {
 public:
  FixedScoreModel(const baselines::ModelContext& ctx, uint64_t seed)
      : KgcModel(ctx), seed_(seed) {}
  std::string Name() const override { return "FixedScore"; }
  baselines::TrainingRegime regime() const override {
    return baselines::TrainingRegime::kOneToN;
  }

  float ScoreOf(int64_t h, int64_t r, int64_t t) const {
    uint64_t x = seed_;
    for (uint64_t v :
         {static_cast<uint64_t>(h), static_cast<uint64_t>(r),
          static_cast<uint64_t>(t)}) {
      x ^= v + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
    }
    // Coarse quantisation provokes ties, exercising the tie-handling.
    return static_cast<float>(x % 97) / 7.0f;
  }

  ag::Var ScoreTriples(const std::vector<int64_t>& h,
                       const std::vector<int64_t>& r,
                       const std::vector<int64_t>& t) override {
    tensor::Tensor out({static_cast<int64_t>(h.size())});
    for (size_t i = 0; i < h.size(); ++i) {
      out.data()[i] = ScoreOf(h[i], r[i], t[i]);
    }
    return ag::Const(out);
  }

  ag::Var ScoreAllTails(const std::vector<int64_t>& h,
                        const std::vector<int64_t>& r) override {
    tensor::Tensor out(
        {static_cast<int64_t>(h.size()), num_entities()});
    for (size_t i = 0; i < h.size(); ++i) {
      for (int64_t t = 0; t < num_entities(); ++t) {
        out.data()[static_cast<int64_t>(i) * num_entities() + t] =
            ScoreOf(h[i], r[i], t);
      }
    }
    return ag::Const(out);
  }

 private:
  uint64_t seed_;
};

class EvaluatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorPropertyTest, MatchesBruteForceOracle) {
  datagen::BkgConfig cfg = datagen::BkgConfig::DrkgMmSynth(0.05);
  cfg.seed = GetParam() * 101 + 1;
  datagen::GeneratedBkg bkg = datagen::GenerateBkg(cfg);
  const kg::Dataset& ds = bkg.dataset;

  baselines::ModelContext ctx;
  ctx.num_entities = ds.num_entities();
  ctx.num_relations = ds.num_relations_with_inverses();
  FixedScoreModel model(ctx, GetParam());

  Evaluator evaluator(ds);
  EvalConfig ec;
  ec.max_triples = 40;
  ec.seed = GetParam();
  const Metrics via_evaluator = evaluator.Evaluate(&model, ds.test, ec);

  // Brute force: recompute the same subset with an independent filter.
  std::vector<kg::Triple> subset = ds.test;
  Rng rng(ec.seed);
  rng.Shuffle(&subset);
  subset.resize(40);

  kg::FilterIndex filter(ds.num_entities(), ds.num_relations());
  filter.AddTriples(ds.AllTriples());

  Metrics oracle;
  auto rank_query = [&](int64_t h, int64_t r, int64_t target) {
    const float target_score = model.ScoreOf(h, r, target);
    double better = 0;
    double equal = 0;
    for (int64_t t = 0; t < ds.num_entities(); ++t) {
      if (t == target) continue;
      if (filter.Contains(h, r, t)) continue;  // filtered setting
      const float s = model.ScoreOf(h, r, t);
      if (s > target_score) ++better;
      if (s == target_score) ++equal;
    }
    oracle.AddRank(1.0 + better + equal / 2.0);
  };
  for (const kg::Triple& t : subset) {
    rank_query(t.head, t.rel, t.tail);
    rank_query(t.tail, t.rel + ds.num_relations(), t.head);
  }

  EXPECT_EQ(via_evaluator.count, oracle.count);
  EXPECT_NEAR(via_evaluator.Mrr(), oracle.Mrr(), 1e-9);
  EXPECT_NEAR(via_evaluator.Mr(), oracle.Mr(), 1e-9);
  EXPECT_EQ(via_evaluator.hits1, oracle.hits1);
  EXPECT_EQ(via_evaluator.hits3, oracle.hits3);
  EXPECT_EQ(via_evaluator.hits10, oracle.hits10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(EvaluatorInvariantTest, BatchSizeDoesNotChangeMetrics) {
  datagen::GeneratedBkg bkg =
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05));
  const kg::Dataset& ds = bkg.dataset;
  baselines::ModelContext ctx;
  ctx.num_entities = ds.num_entities();
  ctx.num_relations = ds.num_relations_with_inverses();
  FixedScoreModel model(ctx, 7);
  Evaluator evaluator(ds);
  EvalConfig small;
  small.batch_size = 3;
  EvalConfig large;
  large.batch_size = 500;
  const Metrics a = evaluator.Evaluate(&model, ds.test, small);
  const Metrics b = evaluator.Evaluate(&model, ds.test, large);
  EXPECT_NEAR(a.Mrr(), b.Mrr(), 1e-9);
  EXPECT_EQ(a.hits10, b.hits10);
}

// Regression: a model whose scores are NaN (e.g. diverged training) used
// to rank every target FIRST — each `s > s_target` / `s == s_target`
// comparison against a NaN target is false — and report perfect MRR. A
// NaN target score must rank worst instead.
TEST(EvaluatorInvariantTest, NanScoresRankWorstNotFirst) {
  datagen::GeneratedBkg bkg =
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05));
  const kg::Dataset& ds = bkg.dataset;
  baselines::ModelContext ctx;
  ctx.num_entities = ds.num_entities();
  ctx.num_relations = ds.num_relations_with_inverses();

  struct NanModel : baselines::KgcModel {
    explicit NanModel(const baselines::ModelContext& c) : KgcModel(c) {}
    std::string Name() const override { return "NaN"; }
    baselines::TrainingRegime regime() const override {
      return baselines::TrainingRegime::kOneToN;
    }
    ag::Var ScoreTriples(const std::vector<int64_t>&,
                         const std::vector<int64_t>&,
                         const std::vector<int64_t>& t) override {
      return ag::Const(tensor::Tensor::Full(
          {static_cast<int64_t>(t.size())},
          std::numeric_limits<float>::quiet_NaN()));
    }
    ag::Var ScoreAllTails(const std::vector<int64_t>& h,
                          const std::vector<int64_t>&) override {
      return ag::Const(tensor::Tensor::Full(
          {static_cast<int64_t>(h.size()), num_entities()},
          std::numeric_limits<float>::quiet_NaN()));
    }
  } model(ctx);

  Evaluator evaluator(ds);
  EvalConfig ec;
  ec.max_triples = 50;
  const Metrics m = evaluator.Evaluate(&model, ds.test, ec);
  EXPECT_EQ(m.hits1, 0);
  EXPECT_EQ(m.hits10, 0);
  // Every rank is 1 + n - |filtered|, i.e. essentially last among the
  // unfiltered candidates.
  EXPECT_GT(m.Mr(), 0.9 * static_cast<double>(ds.num_entities()));
  EXPECT_LT(m.Mrr(), 5.0);  // percentage scale: far from the old 100.0
}

// Regression for the pooled score-buffer reuse: the evaluator now recycles
// the same storage for every batch's score tensor and hoists its index
// scratch vectors out of the batch loop. Stale values from a previous
// batch (or a previous *evaluation*) leaking into the ranking would show
// up here as a metrics mismatch against a fresh-allocation run.
TEST(EvaluatorInvariantTest, PooledBuffersDoNotChangeFilteredRanks) {
  datagen::GeneratedBkg bkg =
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05));
  const kg::Dataset& ds = bkg.dataset;
  baselines::ModelContext ctx;
  ctx.num_entities = ds.num_entities();
  ctx.num_relations = ds.num_relations_with_inverses();
  FixedScoreModel model(ctx, 13);
  Evaluator evaluator(ds);
  EvalConfig ec;
  ec.batch_size = 7;  // many batches -> many buffer round-trips

  const tensor::pool::Mode saved = tensor::pool::ActiveMode();
  auto run = [&](tensor::pool::Mode mode) {
    tensor::pool::Clear();
    tensor::pool::SetMode(mode);
    return evaluator.Evaluate(&model, ds.test, ec);
  };
  const Metrics fresh = run(tensor::pool::Mode::kOff);
  const Metrics pooled_first = run(tensor::pool::Mode::kOn);
  // Second pooled evaluation runs entirely on recycled (dirty) buffers.
  const Metrics pooled_again = evaluator.Evaluate(&model, ds.test, ec);
  const Metrics scrubbed = run(tensor::pool::Mode::kScrub);
  tensor::pool::Clear();
  tensor::pool::SetMode(saved);

  for (const Metrics* m : {&pooled_first, &pooled_again, &scrubbed}) {
    EXPECT_EQ(m->count, fresh.count);
    EXPECT_EQ(m->Mr(), fresh.Mr());
    EXPECT_EQ(m->Mrr(), fresh.Mrr());
    EXPECT_EQ(m->hits1, fresh.hits1);
    EXPECT_EQ(m->hits3, fresh.hits3);
    EXPECT_EQ(m->hits10, fresh.hits10);
  }
}

TEST(EvaluatorInvariantTest, RanksAreWithinBounds) {
  datagen::GeneratedBkg bkg =
      datagen::GenerateBkg(datagen::BkgConfig::OmahaMmSynth(0.05));
  const kg::Dataset& ds = bkg.dataset;
  baselines::ModelContext ctx;
  ctx.num_entities = ds.num_entities();
  ctx.num_relations = ds.num_relations_with_inverses();
  FixedScoreModel model(ctx, 9);
  Evaluator evaluator(ds);
  const Metrics m = evaluator.Evaluate(&model, ds.test);
  EXPECT_GE(m.Mr(), 1.0);
  EXPECT_LE(m.Mr(), static_cast<double>(ds.num_entities()));
  EXPECT_GE(m.Mrr(), 0.0);
  EXPECT_LE(m.Mrr(), 100.0);
  EXPECT_LE(m.hits1, m.hits3);
  EXPECT_LE(m.hits3, m.hits10);
  EXPECT_LE(m.hits10, m.count);
}

}  // namespace
}  // namespace came::eval
