#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "common/io.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace came::nn {
namespace {

class ToyModule : public Module {
 public:
  explicit ToyModule(Rng* rng)
      : child_(4, 2, rng),
        weight_(RegisterParameter("w", XavierNormal({3, 3}, rng))) {
    RegisterSubmodule("child", &child_);
  }

  Linear child_;
  ag::Var weight_;
};

TEST(ModuleTest, CollectsParametersRecursively) {
  Rng rng(1);
  ToyModule m(&rng);
  auto named = m.NamedParameters();
  // w + child.weight + child.bias
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].first, "w");
  EXPECT_EQ(named[1].first, "child.weight");
  EXPECT_EQ(named[2].first, "child.bias");
  EXPECT_EQ(m.NumParameters(), 9 + 8 + 2);
}

TEST(ModuleTest, TrainingModePropagates) {
  Rng rng(2);
  ToyModule m(&rng);
  EXPECT_TRUE(m.training());
  m.SetTraining(false);
  EXPECT_FALSE(m.child_.training());
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(3);
  ToyModule m(&rng);
  ag::SumAll(m.weight_).Backward();
  EXPECT_TRUE(m.weight_.has_grad());
  m.ZeroGrad();
  EXPECT_FALSE(m.weight_.has_grad());
}

TEST(ModuleTest, DuplicateParameterNameDies) {
  struct Dup : Module {
    Dup() {
      RegisterParameter("p", tensor::Tensor::Zeros({1}));
      RegisterParameter("p", tensor::Tensor::Zeros({1}));
    }
  };
  EXPECT_DEATH(Dup(), "duplicate");
}

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(4);
  Linear fc(3, 5, &rng);
  ag::Var x(tensor::Tensor::Full({2, 3}, 0.0f));
  ag::Var y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 5}));
  // Zero input -> bias only (zero-initialised).
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y.value().data()[i], 0.0f);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(5);
  Linear fc(3, 5, &rng, /*bias=*/false);
  EXPECT_EQ(fc.NamedParameters().size(), 1u);
}

TEST(LinearTest, GradCheck) {
  Rng rng(6);
  Linear fc(4, 3, &rng);
  ag::Var x(nn::NormalInit({2, 4}, &rng, 1.0), true);
  auto params = fc.Parameters();
  std::vector<ag::Var> leaves = {x, params[0], params[1]};
  auto fn = [&fc](const std::vector<ag::Var>& v) {
    return ag::SumAll(ag::Square(fc.Forward(v[0])));
  };
  EXPECT_LT(ag::GradCheck(fn, leaves), 5e-2);
}

TEST(EmbeddingTest, LookupMatchesTable) {
  Rng rng(7);
  Embedding emb(6, 3, &rng);
  ag::Var rows = emb.Forward({4, 1});
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_EQ(rows.value().at({0, j}), emb.table().value().at({4, j}));
    EXPECT_EQ(rows.value().at({1, j}), emb.table().value().at({1, j}));
  }
}

TEST(Conv2dTest, ShapePreservedWithSamePadding) {
  Rng rng(8);
  Conv2d conv(2, 4, 3, 1, &rng);
  ag::Var x(tensor::Tensor::Zeros({3, 2, 5, 6}));
  EXPECT_EQ(conv.Forward(x).shape(), (tensor::Shape{3, 4, 5, 6}));
}

TEST(LayerNormTest, AffineIdentityAtInit) {
  // gamma=1, beta=0 at init: output is the normalised input.
  LayerNorm norm(4);
  ag::Var x(tensor::Tensor::FromVector({1, 4}, {1, 2, 3, 4}));
  ag::Var y = norm.Forward(x);
  double mean = 0;
  for (int64_t i = 0; i < 4; ++i) mean += y.value().data()[i];
  EXPECT_NEAR(mean, 0.0, 1e-5);
}

TEST(DropoutTest, RespectsModuleTrainingFlag) {
  Rng rng(9);
  Dropout drop(0.5f, &rng);
  ag::Var x(tensor::Tensor::Full({100}, 1.0f));
  drop.SetTraining(false);
  ag::Var eval_out = drop.Forward(x);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(eval_out.value().data()[i], 1.0f);
  }
  drop.SetTraining(true);
  ag::Var train_out = drop.Forward(x);
  int zeros = 0;
  for (int64_t i = 0; i < 100; ++i) zeros += train_out.value().data()[i] == 0;
  EXPECT_GT(zeros, 10);
}

TEST(InitTest, XavierNormalVarianceMatches) {
  Rng rng(10);
  tensor::Tensor t = XavierNormal({100, 100}, &rng);
  double sumsq = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sumsq += static_cast<double>(t.data()[i]) * t.data()[i];
  }
  const double expected_var = 2.0 / 200.0;
  EXPECT_NEAR(sumsq / t.numel(), expected_var, expected_var * 0.2);
}

TEST(InitTest, XavierUniformBounds) {
  Rng rng(11);
  tensor::Tensor t = XavierUniform({50, 50}, &rng);
  const double bound = std::sqrt(6.0 / 100.0);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(t.data()[i]), bound + 1e-6);
  }
}

TEST(ModuleTest, SnapshotRestoreRoundTrip) {
  Rng rng(20);
  ToyModule m(&rng);
  auto snapshot = m.SnapshotParameters();
  // Mutate every parameter, then restore.
  for (auto& [_, p] : m.NamedParameters()) {
    ag::Var v = p;
    v.mutable_value().Fill(99.0f);
  }
  m.RestoreParameters(snapshot);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const auto& [name, p] = m.NamedParameters()[i];
    for (int64_t j = 0; j < p.numel(); ++j) {
      EXPECT_EQ(p.value().data()[j], snapshot[i].data()[j]) << name;
    }
  }
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(21);
  ToyModule a(&rng);
  const std::string path = "/tmp/came_module_params.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  Rng rng2(99);
  ToyModule b(&rng2);  // different init
  ASSERT_TRUE(b.LoadParameters(path).ok());
  auto na = a.NamedParameters();
  auto nb = b.NamedParameters();
  for (size_t i = 0; i < na.size(); ++i) {
    for (int64_t j = 0; j < na[i].second.numel(); ++j) {
      EXPECT_EQ(na[i].second.value().data()[j],
                nb[i].second.value().data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(ModuleTest, LoadRejectsWrongModule) {
  Rng rng(22);
  ToyModule a(&rng);
  const std::string path = "/tmp/came_module_params2.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  Linear other(4, 2, &rng);
  Status st = other.LoadParameters(path);
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

TEST(ModuleTest, LoadRejectsGarbageFile) {
  const std::string path = "/tmp/came_module_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a parameter file";
  }
  Rng rng(23);
  ToyModule m(&rng);
  EXPECT_EQ(m.LoadParameters(path).code(), Status::Code::kCorruption);
  EXPECT_EQ(m.LoadParameters("/no/such/file").code(),
            Status::Code::kIOError);
  std::remove(path.c_str());
}

TEST(ModuleTest, LoadRejectsTruncatedFileWithoutMutating) {
  Rng rng(24);
  ToyModule a(&rng);
  const std::string path = "/tmp/came_module_trunc.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  std::string data;
  ASSERT_TRUE(io::ReadFile(path, &data).ok());

  Rng rng2(77);
  ToyModule b(&rng2);
  const auto before = b.SnapshotParameters();
  // Truncation anywhere strictly inside the payload must be rejected and
  // must leave every parameter of `b` untouched (all-or-nothing load).
  const size_t len = data.size();
  for (size_t cut : {size_t{2}, size_t{10}, size_t{21}, len / 2, len - 1}) {
    ASSERT_LT(cut, len);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(data.data(), static_cast<std::streamsize>(cut));
    }
    EXPECT_FALSE(b.LoadParameters(path).ok()) << "cut at " << cut;
    const auto after = b.SnapshotParameters();
    for (size_t i = 0; i < before.size(); ++i) {
      for (int64_t j = 0; j < before[i].numel(); ++j) {
        ASSERT_EQ(after[i].data()[j], before[i].data()[j])
            << "param " << i << " mutated by truncated load (cut " << cut
            << ")";
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ModuleTest, LoadRejectsShapeMismatch) {
  Rng rng(25);
  Linear small(4, 2, &rng);
  const std::string path = "/tmp/came_module_shape.bin";
  ASSERT_TRUE(small.SaveParameters(path).ok());
  Linear big(8, 2, &rng);  // same parameter names, different shapes
  Status st = big.LoadParameters(path);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("shape"), std::string::npos) << st.ToString();
  std::remove(path.c_str());
}

TEST(ModuleTest, FailedSaveLeavesPreviousFileIntact) {
  Rng rng(26);
  ToyModule a(&rng);
  const std::string path = "/tmp/came_module_atomic.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  std::string before;
  ASSERT_TRUE(io::ReadFile(path, &before).ok());

  {
    io::ScopedFailpoint fp({io::FailpointKind::kEnospc, /*at_bytes=*/8});
    Rng rng2(55);
    ToyModule other(&rng2);
    EXPECT_FALSE(other.SaveParameters(path).ok());
  }
  std::string after;
  ASSERT_TRUE(io::ReadFile(path, &after).ok());
  EXPECT_EQ(before, after);
  // And the original module still loads from it.
  Rng rng3(66);
  ToyModule c(&rng3);
  EXPECT_TRUE(c.LoadParameters(path).ok());
  std::remove(path.c_str());
}

TEST(InitTest, UniformInitRange) {
  Rng rng(12);
  tensor::Tensor t = UniformInit({1000}, &rng, -2.0, 3.0);
  float lo = 1e9f;
  float hi = -1e9f;
  for (int64_t i = 0; i < t.numel(); ++i) {
    lo = std::min(lo, t.data()[i]);
    hi = std::max(hi, t.data()[i]);
  }
  EXPECT_GE(lo, -2.0f);
  EXPECT_LT(hi, 3.0f);
  EXPECT_LT(lo, -1.5f);
  EXPECT_GT(hi, 2.5f);
}

}  // namespace
}  // namespace came::nn
