// QuantizedTable contract tests: Build rejects garbage, Save/Load is a
// bitwise round trip for both encodings, the v1/v2 CAMEFET loaders
// reject each other's files with a precise message, and the corruption
// matrix (byte flip / truncation / trailing garbage) surfaces as
// Corruption instead of being served.
#include "infer/quantized_table.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_dtype.h"
#include "tensor/qgemm.h"
#include "tensor/tensor.h"

namespace came::infer {
namespace {

namespace fs = std::filesystem;

constexpr int64_t kN = 53;
constexpr int64_t kDim = 7;

FusedEmbeddingTable MakeTable(bool with_bias, uint64_t seed = 0xF00D) {
  Rng rng(seed);
  tensor::Tensor cand({kN, kDim});
  for (int64_t i = 0; i < kN * kDim; ++i) {
    cand.data()[i] = static_cast<float>(rng.Normal());
  }
  // One all-zero row: scale 0 must round-trip.
  std::memset(cand.data() + 17 * kDim, 0, sizeof(float) * kDim);
  tensor::Tensor bias;
  if (with_bias) {
    bias = tensor::Tensor({kN});
    for (int64_t i = 0; i < kN; ++i) {
      bias.data()[i] = static_cast<float>(rng.Normal());
    }
  }
  return FusedEmbeddingTable("QuantFixture", cand, bias, tensor::Tensor());
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class QuantizedTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/came_qtable_test_" + std::to_string(getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(QuantizedTableTest, BuildInt8MatchesDirectQuantization) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/true);
  const Result<QuantizedTable> built =
      QuantizedTable::Build(table, ScoreDtype::kInt8);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const QuantizedTable& q = built.value();
  EXPECT_EQ(q.dtype(), ScoreDtype::kInt8);
  EXPECT_EQ(q.num_entities(), kN);
  EXPECT_EQ(q.dim(), kDim);
  EXPECT_EQ(q.model_name(), "QuantFixture");
  ASSERT_TRUE(q.has_bias());
  EXPECT_EQ(std::memcmp(q.bias().data(), table.bias().data(),
                        sizeof(float) * kN),
            0);

  std::vector<int8_t> want_rows(static_cast<size_t>(kN * kDim));
  std::vector<float> want_scales(static_cast<size_t>(kN));
  ASSERT_TRUE(tensor::qgemm::QuantizeRowsInt8(table.candidates().data(), kN,
                                              kDim, want_rows.data(),
                                              want_scales.data())
                  .ok());
  EXPECT_EQ(std::memcmp(q.int8_rows(), want_rows.data(), want_rows.size()), 0);
  EXPECT_EQ(std::memcmp(q.scales(), want_scales.data(),
                        want_scales.size() * sizeof(float)),
            0);
  EXPECT_EQ(q.scales()[17], 0.0f);  // the all-zero row
  // int8 bytes + fp32 scales: well under the 0.3x fp32 budget.
  EXPECT_EQ(q.entity_matrix_bytes(), kN * kDim + kN * 4);
  EXPECT_LT(static_cast<double>(q.entity_matrix_bytes()),
            0.5 * static_cast<double>(kN * kDim * 4));
}

TEST_F(QuantizedTableTest, BuildBf16MatchesDirectEncoding) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/false);
  const Result<QuantizedTable> built =
      QuantizedTable::Build(table, ScoreDtype::kBf16);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const QuantizedTable& q = built.value();
  EXPECT_EQ(q.dtype(), ScoreDtype::kBf16);
  EXPECT_FALSE(q.has_bias());
  std::vector<uint16_t> want(static_cast<size_t>(kN * kDim));
  ASSERT_TRUE(tensor::qgemm::EncodeRowsBf16(table.candidates().data(), kN,
                                            kDim, want.data())
                  .ok());
  EXPECT_EQ(std::memcmp(q.bf16_rows(), want.data(),
                        want.size() * sizeof(uint16_t)),
            0);
  EXPECT_EQ(q.entity_matrix_bytes(), kN * kDim * 2);
}

TEST_F(QuantizedTableTest, BuildRejectsFp32EmptyAndNonFinite) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/true);
  const Result<QuantizedTable> fp32 =
      QuantizedTable::Build(table, ScoreDtype::kFp32);
  ASSERT_FALSE(fp32.ok());
  EXPECT_EQ(fp32.status().code(), Status::Code::kInvalidArgument);

  const FusedEmbeddingTable empty;
  const Result<QuantizedTable> from_empty =
      QuantizedTable::Build(empty, ScoreDtype::kInt8);
  ASSERT_FALSE(from_empty.ok());
  EXPECT_EQ(from_empty.status().code(), Status::Code::kInvalidArgument);

  tensor::Tensor cand({2, 3});
  for (int64_t i = 0; i < 6; ++i) cand.data()[i] = 1.0f;
  cand.data()[4] = std::numeric_limits<float>::quiet_NaN();
  const FusedEmbeddingTable poisoned("Poisoned", cand, tensor::Tensor(),
                                     tensor::Tensor());
  for (const ScoreDtype dtype : {ScoreDtype::kInt8, ScoreDtype::kBf16}) {
    const Result<QuantizedTable> bad = QuantizedTable::Build(poisoned, dtype);
    ASSERT_FALSE(bad.ok()) << ScoreDtypeName(dtype);
    EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
    EXPECT_NE(bad.status().message().find("row 1"), std::string::npos)
        << bad.status().ToString();
  }
}

TEST_F(QuantizedTableTest, SaveLoadRoundTripInt8WithBias) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/true);
  const QuantizedTable q =
      QuantizedTable::Build(table, ScoreDtype::kInt8).value();
  const std::string path = Path("int8.fet");
  ASSERT_TRUE(q.Save(path).ok());

  QuantizedTable loaded;
  const Status st = QuantizedTable::Load(path, &loaded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(loaded.model_name(), q.model_name());
  EXPECT_EQ(loaded.dtype(), ScoreDtype::kInt8);
  EXPECT_EQ(loaded.num_entities(), kN);
  EXPECT_EQ(loaded.dim(), kDim);
  EXPECT_EQ(std::memcmp(loaded.int8_rows(), q.int8_rows(),
                        static_cast<size_t>(kN * kDim)),
            0);
  EXPECT_EQ(std::memcmp(loaded.scales(), q.scales(), sizeof(float) * kN), 0);
  ASSERT_TRUE(loaded.has_bias());
  EXPECT_EQ(std::memcmp(loaded.bias().data(), q.bias().data(),
                        sizeof(float) * kN),
            0);
}

TEST_F(QuantizedTableTest, SaveLoadRoundTripBf16NoBias) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/false);
  const QuantizedTable q =
      QuantizedTable::Build(table, ScoreDtype::kBf16).value();
  const std::string path = Path("bf16.fet");
  ASSERT_TRUE(q.Save(path).ok());

  QuantizedTable loaded;
  ASSERT_TRUE(QuantizedTable::Load(path, &loaded).ok());
  EXPECT_EQ(loaded.dtype(), ScoreDtype::kBf16);
  EXPECT_FALSE(loaded.has_bias());
  EXPECT_EQ(std::memcmp(loaded.bf16_rows(), q.bf16_rows(),
                        sizeof(uint16_t) * kN * kDim),
            0);
}

TEST_F(QuantizedTableTest, BoundsRoundTripAndLegacyFilesRebuildThem) {
  for (const ScoreDtype dtype : {ScoreDtype::kInt8, ScoreDtype::kBf16}) {
    const FusedEmbeddingTable table = MakeTable(/*with_bias=*/true);
    const QuantizedTable q = QuantizedTable::Build(table, dtype).value();
    ASSERT_FALSE(q.bounds().empty()) << ScoreDtypeName(dtype);
    const std::string path = Path(std::string("bounds_") +
                                  ScoreDtypeName(dtype) + ".fet");
    ASSERT_TRUE(q.Save(path).ok());
    QuantizedTable loaded;
    ASSERT_TRUE(QuantizedTable::Load(path, &loaded).ok());
    EXPECT_EQ(loaded.bounds(), q.bounds());

    // Strip the trailing BNDS section and patch the section count back
    // to 4: a pre-bounds file. It must still load, with equal bounds
    // recomputed from the quantized rows.
    std::string bytes = ReadAll(path);
    size_t off = 16;  // magic 8 + version u32 + count u32
    for (int sec = 0; sec < 4; ++sec) {
      uint64_t len = 0;
      ASSERT_LE(off + 16, bytes.size());
      std::memcpy(&len, bytes.data() + off + 4, sizeof(len));
      off += 16 + static_cast<size_t>(len);
    }
    ASSERT_LT(off, bytes.size()) << "expected a trailing BNDS section";
    std::string legacy = bytes.substr(0, off);
    const uint32_t four = 4;
    std::memcpy(legacy.data() + 12, &four, sizeof(four));
    WriteAll(path, legacy);

    QuantizedTable relegacy;
    ASSERT_TRUE(QuantizedTable::Load(path, &relegacy).ok());
    EXPECT_EQ(relegacy.bounds(), q.bounds()) << ScoreDtypeName(dtype);
  }
}

TEST_F(QuantizedTableTest, VersionCrossLoadsGivePreciseErrors) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/true);
  const std::string v1_path = Path("v1.fet");
  ASSERT_TRUE(table.Save(v1_path).ok());
  const std::string v2_path = Path("v2.fet");
  ASSERT_TRUE(QuantizedTable::Build(table, ScoreDtype::kInt8)
                  .value()
                  .Save(v2_path)
                  .ok());

  // v2 file into the v1 loader: told to use QuantizedTable::Load.
  FusedEmbeddingTable fp32_out;
  const Status v1_st = FusedEmbeddingTable::Load(v2_path, &fp32_out);
  ASSERT_FALSE(v1_st.ok());
  EXPECT_EQ(v1_st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(v1_st.message().find("QuantizedTable"), std::string::npos)
      << v1_st.ToString();

  // v1 file into the v2 loader: told to use FusedEmbeddingTable::Load.
  QuantizedTable q_out;
  const Status v2_st = QuantizedTable::Load(v1_path, &q_out);
  ASSERT_FALSE(v2_st.ok());
  EXPECT_EQ(v2_st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(v2_st.message().find("FusedEmbeddingTable"), std::string::npos)
      << v2_st.ToString();
}

// Corruption matrix: every single-byte flip past the version field, every
// truncation point, and trailing garbage must load as an error (almost
// always Corruption; flips inside a length field can surface as the
// bounds check it trips). What must never happen is a silent "ok".
TEST_F(QuantizedTableTest, CorruptionMatrixByteFlips) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/true);
  const std::string path = Path("flip.fet");
  ASSERT_TRUE(QuantizedTable::Build(table, ScoreDtype::kInt8)
                  .value()
                  .Save(path)
                  .ok());
  const std::string good = ReadAll(path);
  ASSERT_GT(good.size(), 32u);

  // Stride through the file so the test stays fast while still covering
  // every section; always hit the first/last byte.
  for (size_t pos = 0; pos < good.size();
       pos = (pos + 13 < good.size() || pos == good.size() - 1)
                 ? pos + 13
                 : good.size() - 1) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    WriteAll(path, bad);
    QuantizedTable out;
    const Status st = QuantizedTable::Load(path, &out);
    EXPECT_FALSE(st.ok()) << "byte flip at offset " << pos
                          << " loaded successfully";
  }
}

TEST_F(QuantizedTableTest, CorruptionMatrixTruncation) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/false);
  const std::string path = Path("trunc.fet");
  ASSERT_TRUE(QuantizedTable::Build(table, ScoreDtype::kBf16)
                  .value()
                  .Save(path)
                  .ok());
  const std::string good = ReadAll(path);
  for (const size_t keep :
       {size_t{0}, size_t{4}, size_t{15}, good.size() / 2, good.size() - 1}) {
    WriteAll(path, good.substr(0, keep));
    QuantizedTable out;
    const Status st = QuantizedTable::Load(path, &out);
    EXPECT_FALSE(st.ok()) << "truncated to " << keep << " bytes loaded";
  }
}

TEST_F(QuantizedTableTest, CorruptionMatrixTrailingGarbage) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/true);
  const std::string path = Path("trail.fet");
  ASSERT_TRUE(QuantizedTable::Build(table, ScoreDtype::kInt8)
                  .value()
                  .Save(path)
                  .ok());
  const std::string good = ReadAll(path);
  WriteAll(path, good + std::string(17, '\x5a'));
  QuantizedTable out;
  const Status st = QuantizedTable::Load(path, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
}

TEST_F(QuantizedTableTest, PanelSourceServesPointerSlices) {
  const FusedEmbeddingTable table = MakeTable(/*with_bias=*/true);
  const QuantizedTable q =
      QuantizedTable::Build(table, ScoreDtype::kInt8).value();
  QuantizedTablePanelSource src(&q);
  EXPECT_EQ(src.num_entities(), kN);
  EXPECT_EQ(src.dim(), kDim);
  EXPECT_TRUE(src.has_bias());
  EXPECT_EQ(src.dtype(), ScoreDtype::kInt8);
  EXPECT_EQ(src.PanelEnd(0), kN);  // in-RAM: no shard boundaries
  EXPECT_EQ(src.PanelInt8(10, 20), q.int8_rows() + 10 * kDim);
  EXPECT_EQ(src.PanelScales(10, 20), q.scales() + 10);
  EXPECT_EQ(src.BiasPanel(10, 20), q.bias().data() + 10);
  EXPECT_DEATH(src.Panel(0, 10), "");

  const QuantizedTable qb =
      QuantizedTable::Build(table, ScoreDtype::kBf16).value();
  QuantizedTablePanelSource srcb(&qb);
  EXPECT_EQ(srcb.dtype(), ScoreDtype::kBf16);
  EXPECT_EQ(srcb.PanelBf16(3, 9), qb.bf16_rows() + 3 * kDim);
  EXPECT_DEATH(srcb.PanelInt8(0, 1), "");
}

TEST(ScoreDtypeTest, ParseAndName) {
  EXPECT_EQ(ScoreDtypeName(ScoreDtype::kFp32), "fp32");
  EXPECT_EQ(ScoreDtypeName(ScoreDtype::kInt8), "int8");
  EXPECT_EQ(ScoreDtypeName(ScoreDtype::kBf16), "bf16");
  for (const ScoreDtype d :
       {ScoreDtype::kFp32, ScoreDtype::kInt8, ScoreDtype::kBf16}) {
    const Result<ScoreDtype> parsed = ParseScoreDtype(ScoreDtypeName(d));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), d);
  }
  EXPECT_FALSE(ParseScoreDtype("fp16").ok());
  EXPECT_FALSE(ParseScoreDtype("").ok());
}

}  // namespace
}  // namespace came::infer
