// Multi-client hammer over the reader-shared serving path. The PR-10
// sweep dropped the single sweep mutex: TopK / TopKBatch / RankOf from
// concurrent threads share the candidate source (including a shard
// store with a residency budget far below the working set, so panels
// evict and remap under the readers via pin leases) and relaxed-atomic
// stats. Every concurrent answer must equal the single-threaded answer
// computed up front — and under TSan (the CI sanitize job runs this
// binary) the run must be race-free.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "infer/candidate_panels.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_server.h"
#include "kg/filter_index.h"
#include "tensor/shard_store.h"
#include "tensor/tensor.h"

namespace came::infer {
namespace {

constexpr int64_t kN = 211;
constexpr int64_t kDim = 8;
constexpr int64_t kNumRels = 3;
constexpr int kThreads = 8;
constexpr int kItersPerThread = 60;

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

float HashVal(uint64_t a, uint64_t b) {
  return static_cast<float>(Mix(a * 0x100000001b3ULL + b) % 13) * 0.25f -
         1.5f;
}

// Stateless (thread-safe by construction): the server calls it from
// whichever client thread submitted the query.
tensor::Tensor Encode(const std::vector<int64_t>& heads,
                      const std::vector<int64_t>& rels) {
  tensor::Tensor q({static_cast<int64_t>(heads.size()), kDim});
  for (size_t i = 0; i < heads.size(); ++i) {
    for (int64_t j = 0; j < kDim; ++j) {
      q.data()[static_cast<int64_t>(i) * kDim + j] = HashVal(
          static_cast<uint64_t>(heads[i] * kNumRels + rels[i]),
          static_cast<uint64_t>(j));
    }
  }
  return q;
}

struct Expected {
  std::vector<TopKResult> topk;   // per (head, rel), k = 10
  std::vector<double> rank;       // per (head, rel), target = head
};

bool SameTopK(const TopKResult& a, const TopKResult& b) {
  return a.ids == b.ids && a.scores.size() == b.scores.size() &&
         std::memcmp(a.scores.data(), b.scores.data(),
                     a.scores.size() * sizeof(float)) == 0;
}

class ServingHammerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/came_hammer_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    tensor::Tensor cand({kN, kDim});
    for (int64_t i = 0; i < kN; ++i) {
      // Norm skew so the pruned sweep actually skips panels while the
      // hammer runs.
      const float scale = i < 48 ? 1.0f : 0.05f;
      for (int64_t j = 0; j < kDim; ++j) {
        cand.data()[i * kDim + j] =
            scale * HashVal(0xC0FFEE + static_cast<uint64_t>(i),
                            static_cast<uint64_t>(j));
      }
    }
    table_ = FusedEmbeddingTable("Hammer", cand, tensor::Tensor(),
                                 tensor::Tensor());

    ScoreServerConfig cfg;
    cfg.panel_width = 64;
    cfg.prune = true;
    fp32_server_ = std::make_unique<ScoreServer>(Encode, &table_, cfg);
    ScoreServerConfig qcfg = cfg;
    qcfg.dtype = ScoreDtype::kInt8;
    int8_server_ = std::make_unique<ScoreServer>(Encode, &table_, qcfg);

    // Shard-backed server with a residency budget of 2 of 6 shards:
    // the hammer forces concurrent eviction, remap and pin traffic.
    tensor::ShardStoreOptions opts;
    opts.rows_per_shard = 37;
    opts.max_resident_shards = 2;
    auto made = tensor::ShardStore::Create(dir_, kN, kDim, opts);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    store_ = std::move(made).value();
    for (int64_t i = 0; i < kN; ++i) {
      std::memcpy(store_.MutableRow(i), cand.data() + i * kDim,
                  sizeof(float) * kDim);
    }
    ASSERT_TRUE(store_.Seal().ok());
    source_ = std::make_unique<ShardStorePanelSource>(&store_);
    shard_server_ = std::make_unique<ScoreServer>(Encode, source_.get(), cfg);

    filter_.emplace(kN, kNumRels);
    filter_->AddTriples({{3, 0, 50}, {3, 0, 51}, {7, 1, 9}, {12, 2, 110}});
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Expected Precompute(ScoreServer* s) {
    Expected e;
    TopKOptions opts;
    opts.filter = &*filter_;
    for (int64_t head = 0; head < 16; ++head) {
      for (int64_t rel = 0; rel < kNumRels; ++rel) {
        Result<TopKResult> r = s->TopK(head, rel, 10, opts);
        CAME_CHECK(r.ok()) << r.status().ToString();
        e.topk.push_back(std::move(r).value());
        Result<double> rk = s->RankOf(head, rel, (head * 31) % kN, opts);
        CAME_CHECK(rk.ok()) << rk.status().ToString();
        e.rank.push_back(rk.value());
      }
    }
    return e;
  }

  // Returns the number of wrong answers observed across all threads.
  int Hammer(ScoreServer* s, const Expected& e) {
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        TopKOptions opts;
        opts.filter = &*filter_;
        for (int iter = 0; iter < kItersPerThread; ++iter) {
          const uint64_t h = Mix(static_cast<uint64_t>(t) * 1315423911ULL +
                                 static_cast<uint64_t>(iter));
          const int64_t head = static_cast<int64_t>(h % 16);
          const int64_t rel = static_cast<int64_t>((h >> 8) % kNumRels);
          const size_t qi =
              static_cast<size_t>(head * kNumRels + rel);
          switch (h % 3) {
            case 0: {
              Result<TopKResult> r = s->TopK(head, rel, 10, opts);
              if (!r.ok() || !SameTopK(r.value(), e.topk[qi])) {
                mismatches.fetch_add(1);
              }
              break;
            }
            case 1: {
              // A batch mixing three queries; each element must match
              // its per-query expected result.
              const std::vector<int64_t> heads = {head, (head + 5) % 16,
                                                  (head + 11) % 16};
              const std::vector<int64_t> rels = {
                  rel, (rel + 1) % kNumRels, (rel + 2) % kNumRels};
              Result<std::vector<TopKResult>> r =
                  s->TopKBatch(heads, rels, 10, opts);
              if (!r.ok() || r.value().size() != heads.size()) {
                mismatches.fetch_add(1);
                break;
              }
              for (size_t i = 0; i < heads.size(); ++i) {
                const size_t bqi = static_cast<size_t>(
                    heads[i] * kNumRels + rels[i]);
                if (!SameTopK(r.value()[i], e.topk[bqi])) {
                  mismatches.fetch_add(1);
                }
              }
              break;
            }
            default: {
              Result<double> r =
                  s->RankOf(head, rel, (head * 31) % kN, opts);
              if (!r.ok() ||
                  std::memcmp(&r.value(), &e.rank[qi], sizeof(double)) !=
                      0) {
                mismatches.fetch_add(1);
              }
              break;
            }
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    return mismatches.load();
  }

  std::string dir_;
  FusedEmbeddingTable table_;
  tensor::ShardStore store_;
  std::unique_ptr<ShardStorePanelSource> source_;
  std::unique_ptr<ScoreServer> fp32_server_;
  std::unique_ptr<ScoreServer> int8_server_;
  std::unique_ptr<ScoreServer> shard_server_;
  std::optional<kg::FilterIndex> filter_;
};

TEST_F(ServingHammerTest, Fp32ConcurrentClientsMatchSerialAnswers) {
  const Expected e = Precompute(fp32_server_.get());
  const ScoreServer::Stats before = fp32_server_->GetStats();
  EXPECT_EQ(Hammer(fp32_server_.get(), e), 0);
  const ScoreServer::Stats after = fp32_server_->GetStats();
  // Relaxed counters still account every query exactly once: per
  // iteration, op 0 serves 1 query, op 1 serves 3, op 2 (RankOf) none.
  EXPECT_GE(after.queries_served - before.queries_served,
            kThreads * kItersPerThread / 4);
  EXPECT_GT(after.panels_skipped, 0);  // pruning active during the hammer
}

TEST_F(ServingHammerTest, Int8ConcurrentClientsMatchSerialAnswers) {
  const Expected e = Precompute(int8_server_.get());
  EXPECT_EQ(Hammer(int8_server_.get(), e), 0);
}

TEST_F(ServingHammerTest, ShardBackedConcurrentClientsMatchSerialAnswers) {
  const Expected e = Precompute(shard_server_.get());
  EXPECT_EQ(Hammer(shard_server_.get(), e), 0);
  // The tiny residency budget forced eviction/remap churn underneath
  // the concurrent readers.
  EXPECT_GT(store_.GetStats().evictions, 0);
}

TEST_F(ServingHammerTest, SerializedSweepStillMatchesUnderContention) {
  // serialize_sweep=true is the debug escape hatch; it must give the
  // same bits, just without reader concurrency.
  ScoreServerConfig cfg;
  cfg.panel_width = 64;
  cfg.prune = true;
  cfg.serialize_sweep = true;
  ScoreServer serial(Encode, &table_, cfg);
  const Expected e = Precompute(fp32_server_.get());
  EXPECT_EQ(Hammer(&serial, e), 0);
}

}  // namespace
}  // namespace came::infer
