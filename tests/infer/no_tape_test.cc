// NoTapeGuard and the forward-only dispatch telemetry: eval/serving
// forwards must allocate zero autograd state, and the guard must prove it
// rather than assume it.
#include "infer/no_tape.h"

#include <gtest/gtest.h>

#include "autograd/op_registry.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace came::infer {
namespace {

ag::Var Param(float fill) {
  return ag::Var(tensor::Tensor::Full({4}, fill), /*requires_grad=*/true);
}

TEST(NoTapeGuardTest, OpsInsideScopeRecordNothing) {
  const int64_t nodes_before = ag::TapeNodesRecordedThisThread();
  {
    NoTapeGuard guard;
    EXPECT_FALSE(ag::GradModeEnabled());
    const ag::Var a = Param(1.0f);  // requires_grad is irrelevant in-scope
    const ag::Var b = ag::Const(tensor::Tensor::Full({4}, 2.0f));
    const ag::Var c = ag::Relu(ag::Add(a, b));
    EXPECT_FALSE(c.requires_grad());
    EXPECT_EQ(guard.ScopedNoTapeDispatches(), 2);
  }
  EXPECT_TRUE(ag::GradModeEnabled());
  EXPECT_EQ(ag::TapeNodesRecordedThisThread(), nodes_before);
}

TEST(NoTapeGuardTest, GradModeStillRecordsOutsideScope) {
  const int64_t nodes_before = ag::TapeNodesRecordedThisThread();
  const ag::Var out = ag::Add(Param(1.0f), Param(2.0f));
  EXPECT_TRUE(out.requires_grad());
  EXPECT_EQ(ag::TapeNodesRecordedThisThread(), nodes_before + 1);
}

TEST(NoTapeGuardTest, ConstOnlyOpsDispatchForwardOnlyEvenInGradMode) {
  // Grad mode on, but no input requires grad: the op must still skip the
  // tape (and the telemetry must say so).
  ASSERT_TRUE(ag::GradModeEnabled());
  const int64_t nodes_before = ag::TapeNodesRecordedThisThread();
  const int64_t dispatches_before = ag::NoTapeDispatchesThisThread();
  const ag::Var a = ag::Const(tensor::Tensor::Full({4}, 1.0f));
  const ag::Var b = ag::Const(tensor::Tensor::Full({4}, 2.0f));
  (void)ag::Mul(a, b);
  EXPECT_EQ(ag::TapeNodesRecordedThisThread(), nodes_before);
  EXPECT_EQ(ag::NoTapeDispatchesThisThread(), dispatches_before + 1);
}

TEST(NoTapeGuardTest, PerOpRegistryCountersTrackDispatches) {
  auto& registry = ag::OpRegistry::Instance();
  const int mul_id = registry.Find("Mul");
  ASSERT_GE(mul_id, 0) << "Mul never registered";
  const int64_t before = registry.NoTapeDispatches(mul_id);
  {
    NoTapeGuard guard;
    const ag::Var a = ag::Const(tensor::Tensor::Full({4}, 3.0f));
    (void)ag::Mul(a, a);
    (void)ag::Mul(a, a);
  }
  EXPECT_EQ(registry.NoTapeDispatches(mul_id), before + 2);
}

TEST(NoTapeGuardTest, NestedGuardsCountTheirOwnScopes) {
  NoTapeGuard outer;
  const ag::Var a = ag::Const(tensor::Tensor::Full({4}, 1.0f));
  (void)ag::Neg(a);
  {
    NoTapeGuard inner;
    (void)ag::Neg(a);
    EXPECT_EQ(inner.ScopedNoTapeDispatches(), 1);
  }
  EXPECT_EQ(outer.ScopedNoTapeDispatches(), 2);
}

TEST(NoTapeGuardDeathTest, RecordedNodeInScopeIsFatal) {
  // Simulate a misbehaving op that records a tape node under the guard:
  // the destructor must CHECK-fail, not silently accept the allocation.
  EXPECT_DEATH(
      {
        NoTapeGuard guard;
        ag::internal::CountTapeNodeRecorded();
      },
      "no-tape scope");
}

}  // namespace
}  // namespace came::infer
