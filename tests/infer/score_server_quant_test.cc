// Quantized ScoreServer parity: a server scoring through the int8 or
// bf16 path must reproduce a brute-force oracle that applies the *same
// quantized arithmetic* over the full table — bitwise, ties (id asc),
// NaN queries (worst), filtered/excluded/restricted candidate sets,
// K > N, any panel width, any thread count. Quantization changes the
// scores; it must never change the determinism story.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "eval/ranking.h"
#include "infer/candidate_panels.h"
#include "infer/fused_embedding_table.h"
#include "infer/quantized_table.h"
#include "infer/score_dtype.h"
#include "infer/score_server.h"
#include "kg/filter_index.h"
#include "tensor/gemm.h"
#include "tensor/qgemm.h"
#include "tensor/shard_store.h"
#include "tensor/tensor.h"

namespace came::infer {
namespace {

constexpr int64_t kN = 237;  // several 64-wide panels plus a ragged tail
constexpr int64_t kDim = 8;
constexpr int64_t kNumRels = 4;

// Quantised hash values provoke ties (see score_server_test.cc). No NaN
// candidate rows here — QuantizedTable::Build rejects them by contract;
// NaN enters the quantized path through queries instead.
float HashVal(uint64_t a, uint64_t b) {
  uint64_t x = 0x9e3779b97f4a7c15ULL ^ (a * 0x100000001b3ULL) ^
               (b + 0x85ebca6bULL);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<float>(x % 13) * 0.25f - 1.5f;
}

tensor::Tensor EncodeQueriesFixture(const std::vector<int64_t>& heads,
                                    const std::vector<int64_t>& rels) {
  tensor::Tensor q({static_cast<int64_t>(heads.size()), kDim});
  for (size_t i = 0; i < heads.size(); ++i) {
    for (int64_t j = 0; j < kDim; ++j) {
      q.data()[static_cast<int64_t>(i) * kDim + j] = HashVal(
          static_cast<uint64_t>(heads[i] * kNumRels + rels[i]),
          static_cast<uint64_t>(j));
    }
  }
  return q;
}

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(NumThreads()) {}
  ~ThreadCountGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};


// Unwrap a Result or die with the status — keeps test bodies terse.
TopKResult TopKOrDie(ScoreServer* s, int64_t head, int64_t rel, int64_t k,
                     const TopKOptions& opts = {}) {
  Result<TopKResult> r = s->TopK(head, rel, k, opts);
  CAME_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<TopKResult> TopKBatchOrDie(ScoreServer* s,
                                       const std::vector<int64_t>& heads,
                                       const std::vector<int64_t>& rels,
                                       int64_t k,
                                       const TopKOptions& opts = {}) {
  Result<std::vector<TopKResult>> r = s->TopKBatch(heads, rels, k, opts);
  CAME_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

double RankOfOrDie(ScoreServer* s, int64_t head, int64_t rel, int64_t target,
                   const TopKOptions& opts = {}) {
  Result<double> r = s->RankOf(head, rel, target, opts);
  CAME_CHECK(r.ok()) << r.status().ToString();
  return r.value();
}

tensor::Tensor MakeCandidates() {
  tensor::Tensor cand({kN, kDim});
  for (int64_t i = 0; i < kN; ++i) {
    for (int64_t j = 0; j < kDim; ++j) {
      cand.data()[i * kDim + j] = HashVal(0xC0FFEE + static_cast<uint64_t>(i),
                                          static_cast<uint64_t>(j));
    }
  }
  // Exact duplicate rows quantize to identical int8 rows and scales, so
  // their quantized scores tie bitwise and must break by ascending id.
  for (int64_t j = 0; j < kDim; ++j) {
    cand.data()[21 * kDim + j] = cand.data()[20 * kDim + j];
    cand.data()[22 * kDim + j] = cand.data()[20 * kDim + j];
    cand.data()[101 * kDim + j] = cand.data()[100 * kDim + j];
  }
  return cand;
}

class QuantScoreServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tensor::Tensor cand = MakeCandidates();
    tensor::Tensor bias({kN});
    for (int64_t i = 0; i < kN; ++i) {
      bias.data()[i] = HashVal(0xB1A5 + static_cast<uint64_t>(i), 0);
    }
    bias.data()[21] = bias.data()[20];
    bias.data()[22] = bias.data()[20];
    bias.data()[101] = bias.data()[100];

    table_ = FusedEmbeddingTable("Synthetic", cand, bias, tensor::Tensor());
    ScoreServerConfig cfg;
    cfg.panel_width = 64;
    cfg.dtype = ScoreDtype::kInt8;
    int8_server_ = std::make_unique<ScoreServer>(EncodeQueriesFixture,
                                                 &table_, cfg);
    cfg.dtype = ScoreDtype::kBf16;
    bf16_server_ = std::make_unique<ScoreServer>(EncodeQueriesFixture,
                                                 &table_, cfg);
  }

  // Full quantized score vector through the same arithmetic the server
  // advertises: the two-digit serving-quantized query x the server's own
  // quantized table, via the serial scalar reference GEMM, plus the fp32
  // bias.
  std::vector<float> FullInt8Scores(int64_t head, int64_t rel) const {
    const tensor::Tensor q = EncodeQueriesFixture({head}, {rel});
    std::vector<int8_t> q8_hi(static_cast<size_t>(kDim));
    std::vector<int8_t> q8_lo(static_cast<size_t>(kDim));
    float hi_scale = 0.0f;
    float lo_scale = 0.0f;
    tensor::qgemm::QuantizeRowsInt8ServingTwoDigit(
        q.data(), 1, kDim, q8_hi.data(), &hi_scale, q8_lo.data(), &lo_scale);
    const QuantizedTable& qt = int8_server_->quantized_table();
    std::vector<float> scores(static_cast<size_t>(kN));
    tensor::qgemm::ReferenceGemmInt8TwoDigit(
        q8_hi.data(), &hi_scale, q8_lo.data(), &lo_scale, qt.int8_rows(),
        qt.scales(), scores.data(), 1, kDim, kN);
    for (int64_t i = 0; i < kN; ++i) {
      scores[static_cast<size_t>(i)] += table_.bias().data()[i];
    }
    return scores;
  }

  // bf16: decode the server's encoded rows once and run the same fp32
  // GEMM the fp32 path uses (panel scores are bitwise equal to full-width
  // columns, so one full-width call is a valid oracle).
  std::vector<float> FullBf16Scores(int64_t head, int64_t rel) const {
    const tensor::Tensor q = EncodeQueriesFixture({head}, {rel});
    const QuantizedTable& qt = bf16_server_->quantized_table();
    std::vector<float> decoded(static_cast<size_t>(kN * kDim));
    tensor::qgemm::DecodeBf16(qt.bf16_rows(), kN * kDim, decoded.data());
    std::vector<float> scores(static_cast<size_t>(kN));
    tensor::gemm::Gemm(q.data(), decoded.data(), scores.data(), 1, kDim, kN,
                       /*trans_a=*/false, /*trans_b=*/true,
                       /*accumulate=*/false);
    for (int64_t i = 0; i < kN; ++i) {
      scores[static_cast<size_t>(i)] += table_.bias().data()[i];
    }
    return scores;
  }

  static bool InSorted(const std::vector<int64_t>* ids, int64_t id) {
    return ids != nullptr &&
           std::binary_search(ids->begin(), ids->end(), id);
  }

  static TopKResult OracleTopK(const std::vector<float>& scores, int64_t k,
                               const TopKOptions& opts, int64_t head,
                               int64_t rel) {
    std::vector<int64_t> eligible;
    const std::span<const int64_t> filtered =
        opts.filter != nullptr ? opts.filter->Tails(head, rel)
                               : std::span<const int64_t>();
    for (int64_t id = 0; id < kN; ++id) {
      if (opts.restrict_to != nullptr && !InSorted(opts.restrict_to, id)) {
        continue;
      }
      if (InSorted(opts.exclude, id)) continue;
      if (id != opts.keep &&
          std::binary_search(filtered.begin(), filtered.end(), id)) {
        continue;
      }
      eligible.push_back(id);
    }
    std::sort(eligible.begin(), eligible.end(),
              [&](int64_t a, int64_t b) {
                return eval::ScoredBefore(scores[static_cast<size_t>(a)], a,
                                          scores[static_cast<size_t>(b)], b);
              });
    if (k < static_cast<int64_t>(eligible.size())) eligible.resize(k);
    TopKResult out;
    out.ids = eligible;
    for (int64_t id : eligible) {
      out.scores.push_back(scores[static_cast<size_t>(id)]);
    }
    return out;
  }

  static void ExpectSameResult(const TopKResult& got, const TopKResult& want) {
    ASSERT_EQ(got.ids, want.ids);
    ASSERT_EQ(got.scores.size(), want.scores.size());
    EXPECT_EQ(std::memcmp(got.scores.data(), want.scores.data(),
                          got.scores.size() * sizeof(float)),
              0);
  }

  FusedEmbeddingTable table_;
  std::unique_ptr<ScoreServer> int8_server_;
  std::unique_ptr<ScoreServer> bf16_server_;
};

TEST_F(QuantScoreServerTest, DtypePlumbingAndAccessors) {
  EXPECT_EQ(int8_server_->score_dtype(), ScoreDtype::kInt8);
  EXPECT_EQ(bf16_server_->score_dtype(), ScoreDtype::kBf16);
  EXPECT_EQ(int8_server_->quantized_table().dtype(), ScoreDtype::kInt8);
  EXPECT_EQ(bf16_server_->quantized_table().dtype(), ScoreDtype::kBf16);
  // A fused-table quantized server still exposes the fp32 table it was
  // built from; a plain fp32 server has no quantized table.
  EXPECT_EQ(&int8_server_->table(), &table_);
  ScoreServer fp32(EncodeQueriesFixture, &table_);
  EXPECT_EQ(fp32.score_dtype(), ScoreDtype::kFp32);
  EXPECT_DEATH(fp32.quantized_table(), "");
}

TEST_F(QuantScoreServerTest, Int8MatchesQuantizedOracleAcrossKAndThreads) {
  ThreadCountGuard restore;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    for (int64_t k : {int64_t{1}, int64_t{5}, kN, 2 * kN}) {
      for (int64_t head : {int64_t{0}, int64_t{17}, int64_t{123}}) {
        for (int64_t rel = 0; rel < kNumRels; ++rel) {
          const std::vector<float> scores = FullInt8Scores(head, rel);
          ExpectSameResult(TopKOrDie(int8_server_.get(), head, rel, k),
                           OracleTopK(scores, k, {}, head, rel));
        }
      }
    }
  }
}

TEST_F(QuantScoreServerTest, Bf16MatchesQuantizedOracle) {
  ThreadCountGuard restore;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    for (int64_t k : {int64_t{5}, kN}) {
      for (int64_t head : {int64_t{2}, int64_t{99}}) {
        const std::vector<float> scores = FullBf16Scores(head, 1);
        ExpectSameResult(TopKOrDie(bf16_server_.get(), head, 1, k),
                         OracleTopK(scores, k, {}, head, 1));
      }
    }
  }
}

TEST_F(QuantScoreServerTest, QuantizedTiesBreakByAscendingId) {
  const TopKResult all = TopKOrDie(int8_server_.get(), 7, 2, kN);
  for (const std::vector<int64_t>& group :
       {std::vector<int64_t>{20, 21, 22}, std::vector<int64_t>{100, 101}}) {
    std::vector<size_t> pos;
    for (int64_t id : group) {
      const auto it = std::find(all.ids.begin(), all.ids.end(), id);
      ASSERT_NE(it, all.ids.end());
      pos.push_back(static_cast<size_t>(it - all.ids.begin()));
    }
    for (size_t i = 1; i < pos.size(); ++i) {
      EXPECT_EQ(pos[i], pos[i - 1] + 1)
          << "tied ids " << group[i - 1] << "," << group[i];
      // Bitwise-identical quantized scores, by construction.
      EXPECT_EQ(std::memcmp(&all.scores[pos[i]], &all.scores[pos[i - 1]],
                            sizeof(float)),
                0);
    }
  }
}

TEST_F(QuantScoreServerTest, NanQueryRanksEverythingWorstButDeterministic) {
  // A query encoder that emits a NaN row: the serving quantizer degrades
  // it to a NaN scale, every score is NaN, and the serving order falls
  // back to ascending id — same contract as the fp32 path.
  QueryEncoder nan_encoder = [](const std::vector<int64_t>& heads,
                                const std::vector<int64_t>&) {
    tensor::Tensor q({static_cast<int64_t>(heads.size()), kDim});
    for (int64_t i = 0; i < q.numel(); ++i) {
      q.data()[i] = std::numeric_limits<float>::quiet_NaN();
    }
    return q;
  };
  ScoreServerConfig cfg;
  cfg.panel_width = 64;
  cfg.dtype = ScoreDtype::kInt8;
  ScoreServer server(nan_encoder, &table_, cfg);
  const TopKResult got = TopKOrDie(&server, 0, 0, 5);
  ASSERT_EQ(got.ids, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  for (float s : got.scores) EXPECT_TRUE(std::isnan(s));
}

TEST_F(QuantScoreServerTest, FilterExcludeRestrictKeepCompose) {
  kg::FilterIndex filter(kN, kNumRels);
  filter.AddTriples({{9, 1, 30}, {9, 1, 31}, {9, 1, 32}, {9, 1, 20}});
  std::vector<int64_t> shortlist;
  for (int64_t id = 0; id < kN; id += 3) shortlist.push_back(id);
  const std::vector<int64_t> exclude = {9, 33, 60};
  TopKOptions opts;
  opts.filter = &filter;
  opts.keep = 30;
  opts.exclude = &exclude;
  opts.restrict_to = &shortlist;

  const std::vector<float> scores = FullInt8Scores(9, 1);
  const TopKResult got = TopKOrDie(int8_server_.get(), 9, 1, kN, opts);
  ExpectSameResult(got, OracleTopK(scores, kN, opts, 9, 1));
  EXPECT_EQ(std::count(got.ids.begin(), got.ids.end(), 30), 1);  // kept
  EXPECT_EQ(std::count(got.ids.begin(), got.ids.end(), 33), 0);  // excluded
}

TEST_F(QuantScoreServerTest, KLargerThanEligibleReturnsAllEligible) {
  std::vector<int64_t> shortlist = {2, 40, 77};
  TopKOptions opts;
  opts.restrict_to = &shortlist;
  const TopKResult got = TopKOrDie(int8_server_.get(), 1, 0, 50, opts);
  EXPECT_EQ(got.ids.size(), shortlist.size());
  ExpectSameResult(got,
                   OracleTopK(FullInt8Scores(1, 0), 50, opts, 1, 0));
}

TEST_F(QuantScoreServerTest, PanelWidthDoesNotChangeQuantizedResults) {
  for (const ScoreDtype dtype : {ScoreDtype::kInt8, ScoreDtype::kBf16}) {
    const ScoreServer& base =
        dtype == ScoreDtype::kInt8 ? *int8_server_ : *bf16_server_;
    const TopKResult want =
        TopKOrDie(const_cast<ScoreServer*>(&base), 17, 2, 25);
    for (int64_t panel : {int64_t{1}, int64_t{37}, int64_t{4096}}) {
      ScoreServerConfig cfg;
      cfg.panel_width = panel;
      cfg.dtype = dtype;
      ScoreServer other(EncodeQueriesFixture, &table_, cfg);
      ExpectSameResult(TopKOrDie(&other, 17, 2, 25), want);
    }
  }
}

TEST_F(QuantScoreServerTest, TopKBatchMatchesPerQueryCalls) {
  ThreadCountGuard restore;
  std::vector<int64_t> heads;
  std::vector<int64_t> rels;
  for (int64_t i = 0; i < 23; ++i) {
    heads.push_back((i * 31) % kN);
    rels.push_back(i % kNumRels);
  }
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    for (ScoreServer* server : {int8_server_.get(), bf16_server_.get()}) {
      const std::vector<TopKResult> batched =
          TopKBatchOrDie(server, heads, rels, 7);
      ASSERT_EQ(batched.size(), heads.size());
      for (size_t i = 0; i < heads.size(); ++i) {
        ExpectSameResult(batched[i], TopKOrDie(server, heads[i], rels[i], 7));
      }
    }
  }
}

TEST_F(QuantScoreServerTest, RankOfMatchesQuantizedFilteredRank) {
  kg::FilterIndex filter(kN, kNumRels);
  filter.AddTriples({{11, 0, 60}, {11, 0, 61}, {11, 0, 5}});
  TopKOptions opts;
  opts.filter = &filter;
  for (int64_t target : {int64_t{0}, int64_t{21}, int64_t{60},
                         int64_t{236}}) {
    const std::vector<float> scores = FullInt8Scores(11, 0);
    const double want = eval::FilteredRank(scores.data(), kN, target,
                                           filter.Tails(11, 0));
    EXPECT_EQ(RankOfOrDie(int8_server_.get(), 11, 0, target, opts), want)
        << "target " << target;
  }
}

TEST_F(QuantScoreServerTest, Int8StaysCloseToFp32Scores) {
  // Not a bitwise property — a sanity bound on the approximation: with
  // per-row scales over a [-1.5, 1.5] table, every quantized score must
  // land within the summed half-step error of its fp32 counterpart.
  ScoreServer fp32(EncodeQueriesFixture, &table_);
  const std::vector<float> q = FullInt8Scores(13, 2);
  const TopKResult ref = TopKOrDie(&fp32, 13, 2, kN);
  for (size_t r = 0; r < ref.ids.size(); ++r) {
    const float fp = ref.scores[r];
    const float qs = q[static_cast<size_t>(ref.ids[r])];
    EXPECT_LE(std::fabs(fp - qs), 0.05f)
        << "entity " << ref.ids[r];
  }
}

// A quantized beyond-RAM store must serve bitwise the same results as
// the in-RAM quantized server: same quantizer over the same rows, and
// the int8 GEMM's exact-integer panels make shard-boundary clamping
// invisible. (No bias: shard stores carry none.)
class QuantShardBackedServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/came_qshard_server_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    tensor::Tensor cand = MakeCandidates();
    table_ = FusedEmbeddingTable("Synthetic", cand, tensor::Tensor(),
                                 tensor::Tensor());

    tensor::ShardStoreOptions opts;
    opts.rows_per_shard = 37;  // misaligned with the 64-wide panel
    opts.max_resident_shards = 2;
    auto made = tensor::ShardStore::Create(dir_ + "/f32", kN, kDim, opts);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    f32_store_ = std::move(made).value();
    for (int64_t i = 0; i < kN; ++i) {
      std::memcpy(f32_store_.MutableRow(i), cand.data() + i * kDim,
                  sizeof(float) * kDim);
    }
    ASSERT_TRUE(f32_store_.Seal().ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void RunParity(tensor::ShardDtype shard_dtype, ScoreDtype dtype) {
    tensor::ShardStoreOptions qopts;
    qopts.max_resident_shards = 2;
    auto quantized = tensor::ShardStore::Quantize(
        &f32_store_, dir_ + "/" + tensor::ShardDtypeName(shard_dtype),
        shard_dtype, qopts);
    ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
    tensor::ShardStore qstore = std::move(quantized).value();
    EXPECT_EQ(qstore.dtype(), shard_dtype);
    EXPECT_EQ(qstore.rows_per_shard(), f32_store_.rows_per_shard());

    ScoreServerConfig cfg;
    cfg.panel_width = 64;
    cfg.dtype = dtype;
    ScoreServer ram_server(EncodeQueriesFixture, &table_, cfg);

    ShardStorePanelSource source(&qstore);
    EXPECT_EQ(source.dtype(), dtype);
    // Source ctor: the store's dtype governs, whatever the config says.
    ScoreServerConfig shard_cfg;
    shard_cfg.panel_width = 64;
    shard_cfg.dtype = ScoreDtype::kFp32;
    ScoreServer shard_server(EncodeQueriesFixture, &source, shard_cfg);
    EXPECT_EQ(shard_server.score_dtype(), dtype);

    for (int64_t k : {int64_t{1}, int64_t{7}, kN + 10}) {
      for (int64_t head = 0; head < 6; ++head) {
        const TopKResult want = TopKOrDie(&ram_server, head, head % kNumRels, k);
        const TopKResult got = TopKOrDie(&shard_server, head, head % kNumRels, k);
        ASSERT_EQ(got.ids, want.ids) << "k=" << k << " head=" << head;
        ASSERT_EQ(got.scores.size(), want.scores.size());
        EXPECT_EQ(std::memcmp(got.scores.data(), want.scores.data(),
                              got.scores.size() * sizeof(float)),
                  0);
      }
    }
    // The residency budget (2 of 7 shards) must actually have evicted.
    EXPECT_GT(qstore.GetStats().evictions, 0);
  }

  std::string dir_;
  FusedEmbeddingTable table_;
  tensor::ShardStore f32_store_;
};

TEST_F(QuantShardBackedServerTest, Int8ShardParityWithInRamQuantized) {
  RunParity(tensor::ShardDtype::kInt8, ScoreDtype::kInt8);
}

TEST_F(QuantShardBackedServerTest, Bf16ShardParityWithInRamQuantized) {
  RunParity(tensor::ShardDtype::kBf16, ScoreDtype::kBf16);
}

}  // namespace
}  // namespace came::infer
