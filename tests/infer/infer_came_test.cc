// The inference stack against the real CamE model: offline encoder
// folding must be bitwise-invisible, the fused table must round-trip
// through disk into an identical serving state, and the ScoreServer's
// blocked top-K must reproduce a full ScoreAllTails sort exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/came_model.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "eval/ranking.h"
#include "infer/fused_embedding_table.h"
#include "infer/no_tape.h"
#include "infer/score_server.h"
#include "tensor/gemm.h"

namespace came::infer {
namespace {

class InferCamETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bkg_ = new datagen::GeneratedBkg(
        datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05)));
    encoders::FeatureBankConfig cfg;
    cfg.gin_pretrain_epochs = 0;
    bank_ = new encoders::FeatureBank(BuildFeatureBank(*bkg_, cfg));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete bkg_;
  }

  static baselines::ModelContext Context() {
    return {bkg_->dataset.num_entities(),
            bkg_->dataset.num_relations_with_inverses(), bank_,
            &bkg_->dataset.train, 5};
  }
  static core::CamEConfig Config() {
    core::CamEConfig cfg;
    cfg.embed_dim = 16;
    cfg.fusion_dim = 16;
    cfg.reshape_h = 4;
    cfg.conv_filters = 8;
    return cfg;
  }

  static std::vector<int64_t> SomeHeads() { return {0, 3, 7, 11}; }
  static std::vector<int64_t> SomeRels() { return {0, 1, 2, 0}; }

  static tensor::Tensor EvalScoreAllTails(core::CamE* model) {
    NoTapeGuard guard;
    return model->ScoreAllTails(SomeHeads(), SomeRels()).value().Clone();
  }

  static void ExpectBitwiseEqual(const tensor::Tensor& a,
                                 const tensor::Tensor& b) {
    ASSERT_EQ(a.numel(), b.numel());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.numel()) * sizeof(float)),
              0);
  }

  static datagen::GeneratedBkg* bkg_;
  static encoders::FeatureBank* bank_;
};

datagen::GeneratedBkg* InferCamETest::bkg_ = nullptr;
encoders::FeatureBank* InferCamETest::bank_ = nullptr;

TEST_F(InferCamETest, BuildFoldsTheEntireEntityTable) {
  core::CamE model(Context(), Config());
  model.SetTraining(false);
  const FusedEmbeddingTable table = FusedEmbeddingTable::Build(&model);
  EXPECT_EQ(table.num_entities(), bkg_->dataset.num_entities());
  EXPECT_GT(table.dim(), 0);
  EXPECT_EQ(table.model_name(), model.Name());
  // CamE's MMF output is query-independent, so the fold must carry it.
  EXPECT_TRUE(table.has_folded_rows());
  EXPECT_EQ(table.folded_rows().dim(0), table.num_entities());
}

TEST_F(InferCamETest, FoldedEncoderCacheIsBitwiseInvisible) {
  core::CamE model(Context(), Config());
  model.SetTraining(false);
  const tensor::Tensor live = EvalScoreAllTails(&model);

  const FusedEmbeddingTable table = FusedEmbeddingTable::Build(&model);
  table.InstallFoldedRows(&model);
  ASSERT_TRUE(model.HasFoldedEncoderCache());
  const tensor::Tensor cached = EvalScoreAllTails(&model);
  ExpectBitwiseEqual(cached, live);
}

TEST_F(InferCamETest, TrainingModeInvalidatesTheFoldCache) {
  core::CamE model(Context(), Config());
  model.SetTraining(false);
  const FusedEmbeddingTable table = FusedEmbeddingTable::Build(&model);
  table.InstallFoldedRows(&model);
  ASSERT_TRUE(model.HasFoldedEncoderCache());
  // Going back to training must drop the cache: the encoder weights are
  // about to move, so the folded rows would silently go stale.
  model.SetTraining(true);
  EXPECT_FALSE(model.HasFoldedEncoderCache());
}

TEST_F(InferCamETest, SaveLoadInstallRoundTripsTheServingState) {
  core::CamE model(Context(), Config());
  model.SetTraining(false);
  const FusedEmbeddingTable built = FusedEmbeddingTable::Build(&model);
  const std::string path = ::testing::TempDir() + "came_infer_roundtrip.bin";
  ASSERT_TRUE(built.Save(path).ok());
  FusedEmbeddingTable loaded;
  ASSERT_TRUE(FusedEmbeddingTable::Load(path, &loaded).ok());
  std::remove(path.c_str());

  ExpectBitwiseEqual(loaded.candidates(), built.candidates());
  if (built.has_bias()) ExpectBitwiseEqual(loaded.bias(), built.bias());
  ASSERT_EQ(loaded.has_folded_rows(), built.has_folded_rows());
  ExpectBitwiseEqual(loaded.folded_rows(), built.folded_rows());

  // A model running on the *loaded* table scores identically to the
  // live one — the full offline → disk → serving path is lossless.
  loaded.InstallFoldedRows(&model);
  const tensor::Tensor from_disk = EvalScoreAllTails(&model);
  model.SetFoldedEncoderCache(tensor::Tensor());  // back to live encoding
  ExpectBitwiseEqual(from_disk, EvalScoreAllTails(&model));
}

// Full serving score vector for one query: the brute-force oracle the
// blocked panel sweep must reproduce exactly — same query encoding, one
// GEMM over the whole candidate table, plus bias.
std::vector<float> ServingScores(core::CamE* model,
                                 const FusedEmbeddingTable& table,
                                 int64_t head, int64_t rel) {
  const tensor::Tensor q = model->ServingQuery({head}, {rel});
  const int64_t n = table.num_entities();
  std::vector<float> scores(static_cast<size_t>(n));
  tensor::gemm::Gemm(q.data(), table.candidates().data(), scores.data(), 1,
                     table.dim(), n, /*trans_a=*/false, /*trans_b=*/true,
                     /*accumulate=*/false);
  if (table.has_bias()) {
    for (int64_t i = 0; i < n; ++i) {
      scores[static_cast<size_t>(i)] += table.bias().data()[i];
    }
  }
  return scores;
}

TEST_F(InferCamETest, ServerTopKMatchesFullScoreSort) {
  core::CamE model(Context(), Config());
  model.SetTraining(false);
  const FusedEmbeddingTable table = FusedEmbeddingTable::Build(&model);
  table.InstallFoldedRows(&model);
  ScoreServer server(&model, &table);

  const int64_t n = table.num_entities();
  for (size_t qi = 0; qi < SomeHeads().size(); ++qi) {
    const int64_t head = SomeHeads()[qi];
    const int64_t rel = SomeRels()[qi];
    const std::vector<float> scores = ServingScores(&model, table, head, rel);
    std::vector<int64_t> order(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return eval::ScoredBefore(scores[static_cast<size_t>(a)], a,
                                scores[static_cast<size_t>(b)], b);
    });

    const int64_t k = 10;
    Result<TopKResult> got_r = server.TopK(head, rel, k);
    ASSERT_TRUE(got_r.ok()) << got_r.status().ToString();
    const TopKResult got = std::move(got_r).value();
    ASSERT_EQ(static_cast<int64_t>(got.ids.size()), std::min(k, n));
    for (int64_t i = 0; i < static_cast<int64_t>(got.ids.size()); ++i) {
      const int64_t id = got.ids[static_cast<size_t>(i)];
      EXPECT_EQ(id, order[static_cast<size_t>(i)])
          << "query " << qi << " rank " << i;
      EXPECT_EQ(std::memcmp(&got.scores[static_cast<size_t>(i)],
                            &scores[static_cast<size_t>(id)], sizeof(float)),
                0)
          << "query " << qi << " rank " << i;
    }

    // The training-path ScoreAllTails multiplies a materialised transpose
    // (a different accumulation order), so it is only ulp-close to the
    // serving scores — assert agreement to tolerance, not bitwise.
    tensor::Tensor row;
    {
      NoTapeGuard guard;
      row = model.ScoreAllTails({head}, {rel}).value().Clone();
    }
    ASSERT_EQ(row.numel(), n);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(scores[static_cast<size_t>(i)], row.data()[i],
                  1e-4 * (1.0 + std::abs(row.data()[i])))
          << "query " << qi << " entity " << i;
    }
  }
}

TEST_F(InferCamETest, RankOfMatchesSharedProtocolOverServingScores) {
  core::CamE model(Context(), Config());
  model.SetTraining(false);
  const FusedEmbeddingTable table = FusedEmbeddingTable::Build(&model);
  table.InstallFoldedRows(&model);
  ScoreServer server(&model, &table);
  const eval::Evaluator evaluator(bkg_->dataset);

  TopKOptions opts;
  opts.filter = &evaluator.filter();
  int checked = 0;
  for (const kg::Triple& t : bkg_->dataset.test) {
    if (++checked > 8) break;
    const std::vector<float> scores =
        ServingScores(&model, table, t.head, t.rel);
    const double want =
        eval::FilteredRank(scores.data(), table.num_entities(), t.tail,
                           evaluator.filter().Tails(t.head, t.rel));
    EXPECT_EQ(server.RankOf(t.head, t.rel, t.tail, opts).value(), want)
        << "(" << t.head << ", " << t.rel << ", ?) target " << t.tail;
  }
  ASSERT_GT(checked, 0);
}

}  // namespace
}  // namespace came::infer
