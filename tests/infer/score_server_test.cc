// ScoreServer parity against a brute-force oracle that materialises the
// full score vector and sorts it under the serving order. The server's
// blocked panel sweep + bounded heap must reproduce that sort *exactly* —
// ties (id ascending), NaN candidates (worst), filtered and restricted
// candidate sets, K larger than the eligible set — at 1 and 4 threads.
#include "infer/score_server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <limits>
#include <span>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "eval/ranking.h"
#include "infer/batching_front_end.h"
#include "infer/candidate_panels.h"
#include "infer/fused_embedding_table.h"
#include "kg/filter_index.h"
#include "tensor/shard_store.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace came::infer {
namespace {

constexpr int64_t kN = 237;     // spans several 64-wide panels, ragged tail
constexpr int64_t kDim = 8;
constexpr int64_t kNumRels = 4;

// Quantised hash values provoke score ties without handing the test a
// score table that happens to be all-distinct.
float HashVal(uint64_t a, uint64_t b) {
  uint64_t x = 0x9e3779b97f4a7c15ULL ^ (a * 0x100000001b3ULL) ^
               (b + 0x85ebca6bULL);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<float>(x % 13) * 0.25f - 1.5f;
}

// Unwrap helpers: these tests always issue well-formed requests, so a
// non-OK Status is itself a failure.
TopKResult TopKOrDie(ScoreServer* s, int64_t head, int64_t rel, int64_t k,
                     const TopKOptions& opts = {}) {
  Result<TopKResult> r = s->TopK(head, rel, k, opts);
  CAME_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<TopKResult> TopKBatchOrDie(ScoreServer* s,
                                       const std::vector<int64_t>& heads,
                                       const std::vector<int64_t>& rels,
                                       int64_t k,
                                       const TopKOptions& opts = {}) {
  Result<std::vector<TopKResult>> r = s->TopKBatch(heads, rels, k, opts);
  CAME_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

double RankOfOrDie(ScoreServer* s, int64_t head, int64_t rel, int64_t target,
                   const TopKOptions& opts = {}) {
  Result<double> r = s->RankOf(head, rel, target, opts);
  CAME_CHECK(r.ok()) << r.status().ToString();
  return r.value();
}

tensor::Tensor EncodeQueriesFixture(const std::vector<int64_t>& heads,
                                    const std::vector<int64_t>& rels) {
  tensor::Tensor q({static_cast<int64_t>(heads.size()), kDim});
  for (size_t i = 0; i < heads.size(); ++i) {
    for (int64_t j = 0; j < kDim; ++j) {
      q.data()[static_cast<int64_t>(i) * kDim + j] = HashVal(
          static_cast<uint64_t>(heads[i] * kNumRels + rels[i]),
          static_cast<uint64_t>(j));
    }
  }
  return q;
}

class ScoreServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tensor::Tensor cand({kN, kDim});
    for (int64_t i = 0; i < kN; ++i) {
      for (int64_t j = 0; j < kDim; ++j) {
        cand.data()[i * kDim + j] =
            HashVal(0xC0FFEE + static_cast<uint64_t>(i),
                    static_cast<uint64_t>(j));
      }
    }
    // Exact duplicate rows: ids 20/21/22 and 100/101 tie bitwise, so the
    // serving order must fall back to ascending id.
    for (int64_t j = 0; j < kDim; ++j) {
      cand.data()[21 * kDim + j] = cand.data()[20 * kDim + j];
      cand.data()[22 * kDim + j] = cand.data()[20 * kDim + j];
      cand.data()[101 * kDim + j] = cand.data()[100 * kDim + j];
    }
    // NaN candidate rows: their scores are NaN and must rank worst.
    cand.data()[5 * kDim] = std::numeric_limits<float>::quiet_NaN();
    cand.data()[150 * kDim] = std::numeric_limits<float>::quiet_NaN();

    tensor::Tensor bias({kN});
    for (int64_t i = 0; i < kN; ++i) {
      bias.data()[i] = HashVal(0xB1A5 + static_cast<uint64_t>(i), 0);
    }
    // Duplicated rows only tie if their biases tie too.
    bias.data()[21] = bias.data()[20];
    bias.data()[22] = bias.data()[20];
    bias.data()[101] = bias.data()[100];

    table_ = FusedEmbeddingTable("Synthetic", cand, bias, tensor::Tensor());
    ScoreServerConfig cfg;
    cfg.panel_width = 64;
    server_ = std::make_unique<ScoreServer>(EncodeQueriesFixture, &table_,
                                            cfg);
  }

  // Full score vector through the same GEMM the server uses — one call
  // over the whole table instead of blocked panels. Bitwise parity
  // between the two is exactly the property the server advertises.
  std::vector<float> FullScores(int64_t head, int64_t rel) const {
    const tensor::Tensor q = EncodeQueriesFixture({head}, {rel});
    std::vector<float> scores(static_cast<size_t>(kN));
    tensor::gemm::Gemm(q.data(), table_.candidates().data(), scores.data(),
                       1, kDim, kN, /*trans_a=*/false, /*trans_b=*/true,
                       /*accumulate=*/false);
    for (int64_t i = 0; i < kN; ++i) {
      scores[static_cast<size_t>(i)] += table_.bias().data()[i];
    }
    return scores;
  }

  static bool InSorted(const std::vector<int64_t>* ids, int64_t id) {
    return ids != nullptr &&
           std::binary_search(ids->begin(), ids->end(), id);
  }

  TopKResult OracleTopK(int64_t head, int64_t rel, int64_t k,
                        const TopKOptions& opts = {}) const {
    const std::vector<float> scores = FullScores(head, rel);
    std::vector<int64_t> eligible;
    const std::span<const int64_t> filtered =
        opts.filter != nullptr ? opts.filter->Tails(head, rel)
                               : std::span<const int64_t>();
    for (int64_t id = 0; id < kN; ++id) {
      if (opts.restrict_to != nullptr && !InSorted(opts.restrict_to, id)) {
        continue;
      }
      if (InSorted(opts.exclude, id)) continue;
      if (id != opts.keep &&
          std::binary_search(filtered.begin(), filtered.end(), id)) {
        continue;
      }
      eligible.push_back(id);
    }
    std::sort(eligible.begin(), eligible.end(),
              [&](int64_t a, int64_t b) {
                return eval::ScoredBefore(scores[static_cast<size_t>(a)], a,
                                          scores[static_cast<size_t>(b)], b);
              });
    if (k < static_cast<int64_t>(eligible.size())) eligible.resize(k);
    TopKResult out;
    out.ids = eligible;
    for (int64_t id : eligible) {
      out.scores.push_back(scores[static_cast<size_t>(id)]);
    }
    return out;
  }

  static void ExpectSameResult(const TopKResult& got, const TopKResult& want) {
    ASSERT_EQ(got.ids, want.ids);
    ASSERT_EQ(got.scores.size(), want.scores.size());
    // Bitwise score comparison — float == would reject the NaN entries a
    // K >= N query legitimately returns.
    EXPECT_EQ(std::memcmp(got.scores.data(), want.scores.data(),
                          got.scores.size() * sizeof(float)),
              0);
  }

  FusedEmbeddingTable table_;
  std::unique_ptr<ScoreServer> server_;
};

// Restores the global worker count when a test body returns.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(NumThreads()) {}
  ~ThreadCountGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

TEST_F(ScoreServerTest, MatchesOracleAcrossKAndThreads) {
  ThreadCountGuard restore;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    for (int64_t k : {int64_t{1}, int64_t{5}, kN, 2 * kN}) {
      for (int64_t head : {int64_t{0}, int64_t{17}, int64_t{123}}) {
        for (int64_t rel = 0; rel < kNumRels; ++rel) {
          ExpectSameResult(TopKOrDie(server_.get(), head, rel, k),
                           OracleTopK(head, rel, k));
        }
      }
    }
  }
}

TEST_F(ScoreServerTest, TiedScoresBreakByAscendingId) {
  const TopKResult all = TopKOrDie(server_.get(), 7, 2, kN);
  ExpectSameResult(all, OracleTopK(7, 2, kN));
  // The duplicated rows tie bitwise, so each group must appear as a
  // contiguous ascending-id run.
  for (const std::vector<int64_t>& group :
       {std::vector<int64_t>{20, 21, 22}, std::vector<int64_t>{100, 101}}) {
    std::vector<size_t> pos;
    for (int64_t id : group) {
      const auto it = std::find(all.ids.begin(), all.ids.end(), id);
      ASSERT_NE(it, all.ids.end());
      pos.push_back(static_cast<size_t>(it - all.ids.begin()));
    }
    for (size_t i = 1; i < pos.size(); ++i) {
      EXPECT_EQ(pos[i], pos[i - 1] + 1)
          << "tied ids " << group[i - 1] << "," << group[i]
          << " not adjacent in ascending order";
    }
  }
}

TEST_F(ScoreServerTest, NanCandidatesRankWorst) {
  const TopKResult all = TopKOrDie(server_.get(), 3, 1, kN);
  ASSERT_EQ(static_cast<int64_t>(all.ids.size()), kN);
  // Rows 5 and 150 score NaN; they must occupy the last two slots, in
  // ascending id order, and every other score must be finite.
  EXPECT_EQ(all.ids[static_cast<size_t>(kN) - 2], 5);
  EXPECT_EQ(all.ids[static_cast<size_t>(kN) - 1], 150);
  EXPECT_TRUE(std::isnan(all.scores[static_cast<size_t>(kN) - 1]));
  EXPECT_TRUE(std::isnan(all.scores[static_cast<size_t>(kN) - 2]));
  for (size_t i = 0; i + 2 < all.scores.size(); ++i) {
    EXPECT_FALSE(std::isnan(all.scores[i])) << "rank " << i;
  }
}

TEST_F(ScoreServerTest, FilteredProtocolSkipsKnownTailsExceptKeep) {
  kg::FilterIndex filter(kN, kNumRels);
  filter.AddTriples({{9, 1, 30}, {9, 1, 31}, {9, 1, 32}, {9, 1, 20}});
  TopKOptions opts;
  opts.filter = &filter;
  opts.keep = 31;

  const TopKResult got = TopKOrDie(server_.get(), 9, 1, kN, opts);
  ExpectSameResult(got, OracleTopK(9, 1, kN, opts));
  for (int64_t skipped : {int64_t{30}, int64_t{32}, int64_t{20}}) {
    EXPECT_EQ(std::count(got.ids.begin(), got.ids.end(), skipped), 0);
  }
  EXPECT_EQ(std::count(got.ids.begin(), got.ids.end(), 31), 1);
}

TEST_F(ScoreServerTest, RestrictAndExcludeCompose) {
  ThreadCountGuard restore;
  std::vector<int64_t> shortlist;
  for (int64_t id = 3; id < kN; id += 5) shortlist.push_back(id);
  const std::vector<int64_t> exclude = {8, 13, 23};
  TopKOptions opts;
  opts.restrict_to = &shortlist;
  opts.exclude = &exclude;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    const TopKResult got = TopKOrDie(server_.get(), 42, 3, 10, opts);
    ExpectSameResult(got, OracleTopK(42, 3, 10, opts));
    for (int64_t id : got.ids) {
      EXPECT_TRUE(std::binary_search(shortlist.begin(), shortlist.end(), id));
      EXPECT_FALSE(std::binary_search(exclude.begin(), exclude.end(), id));
    }
  }
}

TEST_F(ScoreServerTest, KLargerThanEligibleReturnsAllEligible) {
  std::vector<int64_t> shortlist = {2, 40, 77};
  TopKOptions opts;
  opts.restrict_to = &shortlist;
  const TopKResult got = TopKOrDie(server_.get(), 1, 0, 50, opts);
  EXPECT_EQ(got.ids.size(), shortlist.size());
  ExpectSameResult(got, OracleTopK(1, 0, 50, opts));
}

TEST_F(ScoreServerTest, PanelWidthDoesNotChangeResults) {
  for (int64_t panel : {int64_t{1}, int64_t{37}, int64_t{4096}}) {
    ScoreServerConfig cfg;
    cfg.panel_width = panel;
    ScoreServer other(EncodeQueriesFixture, &table_, cfg);
    ExpectSameResult(TopKOrDie(&other, 17, 2, 25),
                     TopKOrDie(server_.get(), 17, 2, 25));
  }
}

TEST_F(ScoreServerTest, TopKBatchMatchesPerQueryCalls) {
  ThreadCountGuard restore;
  std::vector<int64_t> heads;
  std::vector<int64_t> rels;
  for (int64_t i = 0; i < 23; ++i) {
    heads.push_back((i * 31) % kN);
    rels.push_back(i % kNumRels);
  }
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    const std::vector<TopKResult> batched =
        TopKBatchOrDie(server_.get(), heads, rels, 7);
    ASSERT_EQ(batched.size(), heads.size());
    for (size_t i = 0; i < heads.size(); ++i) {
      ExpectSameResult(batched[i],
                       TopKOrDie(server_.get(), heads[i], rels[i], 7));
    }
  }
}

TEST_F(ScoreServerTest, RankOfMatchesSharedFilteredRank) {
  kg::FilterIndex filter(kN, kNumRels);
  filter.AddTriples({{11, 0, 60}, {11, 0, 61}, {11, 0, 5}});
  TopKOptions opts;
  opts.filter = &filter;
  // Targets cover the interesting cases: plain, tied (21), NaN-scored
  // (5 — also a known tail, which RankOf must keep), and filtered-out
  // neighbours (61 while ranking 60).
  for (int64_t target : {int64_t{0}, int64_t{21}, int64_t{5}, int64_t{60},
                         int64_t{236}}) {
    const std::vector<float> scores = FullScores(11, 0);
    const double want = eval::FilteredRank(scores.data(), kN, target,
                                           filter.Tails(11, 0));
    EXPECT_EQ(RankOfOrDie(server_.get(), 11, 0, target, opts), want)
        << "target " << target;
  }
}

TEST_F(ScoreServerTest, StatsCountQueriesAndPanels) {
  const ScoreServer::Stats before = server_->GetStats();
  (void)TopKOrDie(server_.get(), 1, 1, 3);
  (void)TopKBatchOrDie(server_.get(), {2, 3}, {0, 1}, 3);
  const ScoreServer::Stats after = server_->GetStats();
  EXPECT_EQ(after.queries_served - before.queries_served, 3);
  EXPECT_EQ(after.batches_executed - before.batches_executed, 2);
  EXPECT_GT(after.panels_scored, before.panels_scored);
}

// ---------------------------------------------------------------------------
// Exact panel-skip pruning.
// ---------------------------------------------------------------------------

TEST_F(ScoreServerTest, PrunedSweepBitwiseMatchesUnprunedAndOracle) {
  ThreadCountGuard restore;
  ScoreServerConfig on_cfg;
  on_cfg.panel_width = 64;
  on_cfg.prune = true;
  ScoreServerConfig off_cfg = on_cfg;
  off_cfg.prune = false;
  ScoreServer on(EncodeQueriesFixture, &table_, on_cfg);
  ScoreServer off(EncodeQueriesFixture, &table_, off_cfg);
  kg::FilterIndex filter(kN, kNumRels);
  filter.AddTriples({{9, 1, 30}, {9, 1, 31}, {11, 0, 60}, {11, 0, 5}});
  TopKOptions fopts;
  fopts.filter = &filter;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    for (int64_t k : {int64_t{1}, int64_t{5}, int64_t{25}, kN}) {
      for (int64_t head : {int64_t{0}, int64_t{9}, int64_t{123}}) {
        for (int64_t rel = 0; rel < kNumRels; ++rel) {
          const TopKResult got = TopKOrDie(&on, head, rel, k, fopts);
          ExpectSameResult(got, TopKOrDie(&off, head, rel, k, fopts));
          ExpectSameResult(got, OracleTopK(head, rel, k, fopts));
        }
      }
    }
    // Ranks too — targets cover plain, bitwise-tied (21) and NaN (5).
    for (int64_t target : {int64_t{0}, int64_t{21}, int64_t{5}, int64_t{60},
                           kN - 1}) {
      EXPECT_EQ(RankOfOrDie(&on, 11, 0, target, fopts),
                RankOfOrDie(&off, 11, 0, target, fopts))
          << "target " << target;
    }
  }
  EXPECT_EQ(off.GetStats().panels_skipped, 0);
}

// A norm-skewed table (hot band of full-scale rows, long tiny-norm tail)
// is the shape pruning exists for: the sweep must actually skip panels
// there and still match the prune-off server bit for bit.
TEST(ScoreServerPruneTest, SkewedTableSkipsPanelsBitwiseIdentically) {
  const int64_t n = 2048;
  const int64_t hot = 96;
  tensor::Tensor cand({n, kDim});
  tensor::Tensor bias({n});
  for (int64_t i = 0; i < n; ++i) {
    const float scale = i < hot ? 1.0f : 0.01f;
    for (int64_t j = 0; j < kDim; ++j) {
      cand.data()[i * kDim + j] =
          scale * HashVal(0xFEED + static_cast<uint64_t>(i),
                          static_cast<uint64_t>(j));
    }
    bias.data()[i] = 0.001f * HashVal(0xB1A5, static_cast<uint64_t>(i));
  }
  const FusedEmbeddingTable table("skewed", cand, bias, tensor::Tensor());
  ScoreServerConfig on_cfg;
  on_cfg.panel_width = 128;
  on_cfg.prune = true;
  ScoreServerConfig off_cfg = on_cfg;
  off_cfg.prune = false;
  ScoreServer on(EncodeQueriesFixture, &table, on_cfg);
  ScoreServer off(EncodeQueriesFixture, &table, off_cfg);
  for (int64_t head = 0; head < 12; ++head) {
    const TopKResult got = TopKOrDie(&on, head, head % kNumRels, 10);
    const TopKResult want = TopKOrDie(&off, head, head % kNumRels, 10);
    ASSERT_EQ(got.ids, want.ids) << "head " << head;
    EXPECT_EQ(std::memcmp(got.scores.data(), want.scores.data(),
                          got.scores.size() * sizeof(float)),
              0);
    EXPECT_EQ(RankOfOrDie(&on, head, 0, head * 71 % n),
              RankOfOrDie(&off, head, 0, head * 71 % n));
  }
  const ScoreServer::Stats stats = on.GetStats();
  EXPECT_GT(stats.panels_skipped, 0);
  EXPECT_GT(stats.bound_rejects, 0);
  // Every panel of every batch is either scored or skipped outright
  // (single-query batches, so the two partition the sweep).
  EXPECT_EQ(stats.panels_scored + stats.panels_skipped,
            stats.batches_executed * ((n + 127) / 128));
}

TEST(ScoreServerPruneTest, NanQueryMatchesUnprunedSweep) {
  tensor::Tensor cand({kN, kDim});
  for (int64_t i = 0; i < kN; ++i) {
    for (int64_t j = 0; j < kDim; ++j) {
      cand.data()[i * kDim + j] = HashVal(static_cast<uint64_t>(i),
                                          static_cast<uint64_t>(j));
    }
  }
  const FusedEmbeddingTable table("nanq", cand, tensor::Tensor(),
                                  tensor::Tensor());
  // Head 3 encodes to an all-NaN query row (a diverged encoder): every
  // candidate scores NaN and the serving order falls back to ids.
  QueryEncoder enc = [](const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) {
    tensor::Tensor q = EncodeQueriesFixture(heads, rels);
    for (size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] != 3) continue;
      for (int64_t j = 0; j < kDim; ++j) {
        q.data()[static_cast<int64_t>(i) * kDim + j] =
            std::numeric_limits<float>::quiet_NaN();
      }
    }
    return q;
  };
  ScoreServerConfig on_cfg;
  on_cfg.panel_width = 64;
  on_cfg.prune = true;
  ScoreServerConfig off_cfg = on_cfg;
  off_cfg.prune = false;
  ScoreServer on(enc, &table, on_cfg);
  ScoreServer off(enc, &table, off_cfg);
  const TopKResult got = TopKOrDie(&on, 3, 0, 7);
  const TopKResult want = TopKOrDie(&off, 3, 0, 7);
  ASSERT_EQ(got.ids, want.ids);
  ASSERT_EQ(got.ids, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6}));
  for (float s : got.scores) EXPECT_TRUE(std::isnan(s));
  EXPECT_EQ(RankOfOrDie(&on, 3, 0, 100), RankOfOrDie(&off, 3, 0, 100));
}

TEST_F(ScoreServerTest, RankOfNanTargetSkipsEveryPanel) {
  if (!ScorePruneFromEnv()) GTEST_SKIP() << "pruning disabled via env";
  const ScoreServer::Stats before = server_->GetStats();
  // Row 5 is a NaN candidate, so the target score is NaN: the rank is
  // computable from n and the filter alone and no panel needs scoring.
  const std::vector<float> scores = FullScores(11, 0);
  const double want =
      eval::FilteredRank(scores.data(), kN, 5, std::span<const int64_t>());
  EXPECT_EQ(RankOfOrDie(server_.get(), 11, 0, 5), want);
  const ScoreServer::Stats after = server_->GetStats();
  EXPECT_EQ(after.panels_scored, before.panels_scored);
  EXPECT_EQ(after.panels_skipped - before.panels_skipped, (kN + 63) / 64);
}

// ---------------------------------------------------------------------------
// Server-boundary validation: malformed requests are clean statuses, not
// process-fatal CHECKs.
// ---------------------------------------------------------------------------

TEST_F(ScoreServerTest, MalformedRequestsReturnInvalidArgument) {
  EXPECT_EQ(server_->TopK(1, 1, 0).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server_->TopK(1, 1, -4).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server_->TopK(-1, 1, 3).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server_->TopK(kN, 1, 3).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server_->TopKBatch({1, 2}, {0}, 3).status().code(),
            Status::Code::kInvalidArgument);
  // One bad id anywhere in the batch rejects the whole batch.
  EXPECT_EQ(server_->TopKBatch({1, kN + 5, 2}, {0, 0, 0}, 3).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server_->RankOf(1, 0, -1).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server_->RankOf(1, 0, kN).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server_->RankOf(-7, 0, 3).status().code(),
            Status::Code::kInvalidArgument);
  // An empty batch is well-formed: no queries, no results.
  const Result<std::vector<TopKResult>> empty =
      server_->TopKBatch({}, {}, 3);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST_F(ScoreServerTest, RelationRangeEnforcedWhenConfigured) {
  ScoreServerConfig cfg;
  cfg.panel_width = 64;
  cfg.num_relations = kNumRels;
  ScoreServer s(EncodeQueriesFixture, &table_, cfg);
  EXPECT_EQ(s.TopK(1, kNumRels, 3).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(s.TopK(1, -1, 3).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_TRUE(s.TopK(1, kNumRels - 1, 3).ok());
  EXPECT_EQ(s.RankOf(1, kNumRels, 3).status().code(),
            Status::Code::kInvalidArgument);
}

TEST_F(ScoreServerTest, NonPositivePanelWidthClampsInsteadOfCrashing) {
  for (int64_t width : {int64_t{0}, int64_t{-8}}) {
    ScoreServerConfig cfg;
    cfg.panel_width = width;
    ScoreServer s(EncodeQueriesFixture, &table_, cfg);
    ExpectSameResult(TopKOrDie(&s, 17, 2, 25),
                     TopKOrDie(server_.get(), 17, 2, 25));
  }
}

TEST(ScorePruneEnvTest, ParsesOnOffAndDefaultsToOn) {
  const char* saved = std::getenv("CAME_SCORE_PRUNE");
  const std::string saved_copy = saved != nullptr ? saved : "";
  for (const char* on : {"on", "1", "true", "ON", "True"}) {
    ::setenv("CAME_SCORE_PRUNE", on, 1);
    EXPECT_TRUE(ScorePruneFromEnv()) << on;
  }
  for (const char* off : {"off", "0", "false", "OFF", "False"}) {
    ::setenv("CAME_SCORE_PRUNE", off, 1);
    EXPECT_FALSE(ScorePruneFromEnv()) << off;
  }
  ::setenv("CAME_SCORE_PRUNE", "bogus", 1);
  EXPECT_TRUE(ScorePruneFromEnv());  // warn + default on
  ::unsetenv("CAME_SCORE_PRUNE");
  EXPECT_TRUE(ScorePruneFromEnv());
  if (saved != nullptr) ::setenv("CAME_SCORE_PRUNE", saved_copy.c_str(), 1);
}

TEST_F(ScoreServerTest, BatchingFrontEndMatchesDirectCalls) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  BatchingFrontEndConfig cfg;
  cfg.max_batch = 16;
  std::vector<std::vector<TopKResult>> got(kClients);
  std::vector<std::vector<std::pair<int64_t, int64_t>>> queries(kClients);
  {
    BatchingFrontEnd front(server_.get(), /*k=*/5, {}, cfg);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i) {
          const int64_t head = (c * 61 + i * 7) % kN;
          const int64_t rel = (c + i) % kNumRels;
          queries[static_cast<size_t>(c)].emplace_back(head, rel);
          got[static_cast<size_t>(c)].push_back(
              front.Submit(head, rel).get());
        }
      });
    }
    for (auto& t : clients) t.join();
    const BatchingFrontEnd::Stats stats = front.GetStats();
    EXPECT_EQ(stats.queries_served, kClients * kPerClient);
    EXPECT_GE(stats.batches_executed, 1);
    EXPECT_GE(stats.max_coalesced, 1);
    EXPECT_LE(stats.max_coalesced, cfg.max_batch);
  }
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const auto [head, rel] = queries[static_cast<size_t>(c)]
                                      [static_cast<size_t>(i)];
      ExpectSameResult(got[static_cast<size_t>(c)][static_cast<size_t>(i)],
                       TopKOrDie(server_.get(), head, rel, 5));
    }
  }
}

TEST_F(ScoreServerTest, FrontEndDestructorDrainsOutstandingQueries) {
  std::vector<std::future<TopKResult>> futures;
  {
    BatchingFrontEnd front(server_.get(), /*k=*/3);
    for (int i = 0; i < 32; ++i) futures.push_back(front.Submit(i % kN, 0));
  }
  for (auto& f : futures) {
    const TopKResult r = f.get();  // must not hang or break the promise
    EXPECT_EQ(r.ids.size(), 3u);
  }
}

// Beyond-RAM serving parity: a ScoreServer over a ShardStorePanelSource
// (mmap-backed slabs, tight residency budget, shard boundaries that do
// not align with the panel width) must reproduce the in-RAM fused-table
// server bit for bit — ids, scores, and filtered ranks.
class ShardBackedServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/came_shard_server_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);

    tensor::Tensor cand({kN, kDim});
    for (int64_t i = 0; i < kN; ++i) {
      for (int64_t j = 0; j < kDim; ++j) {
        cand.data()[i * kDim + j] =
            HashVal(0xC0FFEE + static_cast<uint64_t>(i),
                    static_cast<uint64_t>(j));
      }
    }
    cand.data()[5 * kDim] = std::numeric_limits<float>::quiet_NaN();

    // No bias: the shard-backed source serves inner-product-only models.
    table_ = FusedEmbeddingTable("Synthetic", cand, tensor::Tensor(),
                                 tensor::Tensor());

    // 37 rows per shard: deliberately misaligned with the 64-wide panel,
    // so every shard boundary exercises the PanelEnd clamping.
    tensor::ShardStoreOptions opts;
    opts.rows_per_shard = 37;
    opts.max_resident_shards = 2;
    auto made = tensor::ShardStore::Create(dir_, kN, kDim, opts);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    store_ = std::move(made).value();
    for (int64_t i = 0; i < kN; ++i) {
      std::memcpy(store_.MutableRow(i), cand.data() + i * kDim,
                  sizeof(float) * kDim);
    }
    ASSERT_TRUE(store_.Seal().ok());

    ScoreServerConfig cfg;
    cfg.panel_width = 64;
    ram_server_ = std::make_unique<ScoreServer>(EncodeQueriesFixture,
                                                &table_, cfg);
    source_ = std::make_unique<ShardStorePanelSource>(&store_);
    shard_server_ = std::make_unique<ScoreServer>(EncodeQueriesFixture,
                                                  source_.get(), cfg);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  FusedEmbeddingTable table_;
  tensor::ShardStore store_;
  std::unique_ptr<ShardStorePanelSource> source_;
  std::unique_ptr<ScoreServer> ram_server_;
  std::unique_ptr<ScoreServer> shard_server_;
};

TEST_F(ShardBackedServerTest, TopKMatchesInRamServerBitwise) {
  for (int64_t k : {int64_t{1}, int64_t{7}, int64_t{64}, kN + 10}) {
    for (int64_t head = 0; head < 6; ++head) {
      const TopKResult want =
          TopKOrDie(ram_server_.get(), head, head % kNumRels, k);
      const TopKResult got =
          TopKOrDie(shard_server_.get(), head, head % kNumRels, k);
      ASSERT_EQ(got.ids, want.ids) << "k=" << k << " head=" << head;
      ASSERT_EQ(got.scores.size(), want.scores.size());
      EXPECT_EQ(std::memcmp(got.scores.data(), want.scores.data(),
                            got.scores.size() * sizeof(float)),
                0);
    }
  }
  // The residency budget (2 of 7 shards) must actually have evicted.
  EXPECT_GT(store_.GetStats().evictions, 0);
}

TEST_F(ShardBackedServerTest, FilteredRankAndOptionsMatchInRamServer) {
  kg::FilterIndex filter(kN, kNumRels);
  filter.AddTriples({{3, 1, 40}, {3, 1, 41}, {3, 1, 42}, {9, 0, 100}});
  TopKOptions opts;
  opts.filter = &filter;
  const std::vector<int64_t> restrict_to = {2, 3, 40, 41, 77, 150, 200};

  for (int64_t head : {3, 9}) {
    for (int64_t rel = 0; rel < kNumRels; ++rel) {
      for (int64_t target : {0L, 40L, 42L, kN - 1}) {
        opts.keep = target;
        EXPECT_EQ(RankOfOrDie(ram_server_.get(), head, rel, target, opts),
                  RankOfOrDie(shard_server_.get(), head, rel, target, opts));
      }
      opts.keep = -1;
      opts.restrict_to = &restrict_to;
      const TopKResult want = TopKOrDie(ram_server_.get(), head, rel, 5, opts);
      const TopKResult got = TopKOrDie(shard_server_.get(), head, rel, 5, opts);
      EXPECT_EQ(got.ids, want.ids);
      opts.restrict_to = nullptr;
    }
  }
}

TEST_F(ShardBackedServerTest, ShardServerHasNoFusedTable) {
  EXPECT_EQ(shard_server_->num_entities(), kN);
  EXPECT_DEATH(shard_server_->table(), "not backed by a fused table");
}

}  // namespace
}  // namespace came::infer
