// FusedEmbeddingTable on-disk format: bitwise round-trips, and every
// corruption (bit flip, truncation, bad magic, trailing bytes) must load
// as an error — never be served.
#include "infer/fused_embedding_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace came::infer {
namespace {

std::string TmpPath(const std::string& tag) {
  return ::testing::TempDir() + "came_fused_table_" + tag + ".bin";
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

FusedEmbeddingTable SyntheticTable() {
  tensor::Tensor cand = tensor::Tensor::FromVector(
      {4, 3}, {0.5f, -1.25f, 3.0f,   //
               2.0f, 0.0f, -0.75f,   //
               1.5f, 1.5f, 1.5f,     //
               -2.0f, 4.25f, 0.25f});
  tensor::Tensor bias = tensor::Tensor::FromVector({4}, {0.1f, -0.2f, 0.0f, 7.5f});
  tensor::Tensor fold = tensor::Tensor::Arange(4 * 5).Reshape({4, 5});
  return FusedEmbeddingTable("TestModel", cand, bias, fold);
}

void ExpectBitwiseEqual(const tensor::Tensor& a, const tensor::Tensor& b) {
  ASSERT_EQ(a.numel(), b.numel());
  ASSERT_EQ(a.ndim(), b.ndim());
  for (int64_t i = 0; i < a.ndim(); ++i) EXPECT_EQ(a.dim(i), b.dim(i));
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0);
}

TEST(FusedTableFormatTest, RoundTripIsBitwise) {
  const std::string path = TmpPath("roundtrip");
  const FusedEmbeddingTable table = SyntheticTable();
  ASSERT_TRUE(table.Save(path).ok());

  FusedEmbeddingTable loaded;
  ASSERT_TRUE(FusedEmbeddingTable::Load(path, &loaded).ok());
  EXPECT_EQ(loaded.model_name(), "TestModel");
  EXPECT_EQ(loaded.num_entities(), 4);
  EXPECT_EQ(loaded.dim(), 3);
  ASSERT_TRUE(loaded.has_bias());
  ASSERT_TRUE(loaded.has_folded_rows());
  ExpectBitwiseEqual(loaded.candidates(), table.candidates());
  ExpectBitwiseEqual(loaded.bias(), table.bias());
  ExpectBitwiseEqual(loaded.folded_rows(), table.folded_rows());
  std::remove(path.c_str());
}

TEST(FusedTableFormatTest, AbsentBiasAndFoldRoundTrip) {
  const std::string path = TmpPath("no_bias");
  tensor::Tensor cand = tensor::Tensor::Full({2, 2}, 1.0f);
  const FusedEmbeddingTable table("Bare", cand, tensor::Tensor(),
                                  tensor::Tensor());
  ASSERT_TRUE(table.Save(path).ok());

  FusedEmbeddingTable loaded;
  ASSERT_TRUE(FusedEmbeddingTable::Load(path, &loaded).ok());
  EXPECT_FALSE(loaded.has_bias());
  EXPECT_FALSE(loaded.has_folded_rows());
  EXPECT_EQ(loaded.num_entities(), 2);
  std::remove(path.c_str());
}

TEST(FusedTableFormatTest, BoundsRoundTripThroughBndsSection) {
  const std::string path = TmpPath("bounds");
  const FusedEmbeddingTable table = SyntheticTable();
  ASSERT_FALSE(table.bounds().empty());
  ASSERT_TRUE(table.Save(path).ok());
  FusedEmbeddingTable loaded;
  ASSERT_TRUE(FusedEmbeddingTable::Load(path, &loaded).ok());
  EXPECT_EQ(loaded.bounds(), table.bounds());
  std::remove(path.c_str());
}

TEST(FusedTableFormatTest, LegacyFourSectionFileLoadsWithRebuiltBounds) {
  // Files written before the BNDS section carry 4 sections; they must
  // still load, with bounds recomputed from the candidate rows.
  const std::string path = TmpPath("legacy");
  const FusedEmbeddingTable table = SyntheticTable();
  ASSERT_TRUE(table.Save(path).ok());
  std::string bytes = Slurp(path);
  // Walk the first four sections (magic 8 + version 4 + count 4 = 16
  // header bytes; each section is id u32 + len u64 + crc u32 + payload)
  // and drop everything after them.
  size_t off = 16;
  for (int sec = 0; sec < 4; ++sec) {
    uint64_t len = 0;
    ASSERT_LE(off + 16, bytes.size());
    std::memcpy(&len, bytes.data() + off + 4, sizeof(len));
    off += 16 + static_cast<size_t>(len);
  }
  ASSERT_LT(off, bytes.size()) << "expected a trailing BNDS section";
  std::string legacy = bytes.substr(0, off);
  const uint32_t four = 4;
  std::memcpy(legacy.data() + 12, &four, sizeof(four));
  Dump(path, legacy);

  FusedEmbeddingTable loaded;
  ASSERT_TRUE(FusedEmbeddingTable::Load(path, &loaded).ok());
  ExpectBitwiseEqual(loaded.candidates(), table.candidates());
  // Rebuilt-on-construction bounds equal the persisted ones (both come
  // from the same rows through the same accounting).
  EXPECT_EQ(loaded.bounds(), table.bounds());
  std::remove(path.c_str());
}

TEST(FusedTableFormatTest, EveryBitFlipIsRejected) {
  const std::string path = TmpPath("bitflip");
  ASSERT_TRUE(SyntheticTable().Save(path).ok());
  const std::string good = Slurp(path);
  ASSERT_FALSE(good.empty());
  // Flip one byte at a stride of positions across the whole file; the
  // CRCs (or the magic/length checks) must catch each one.
  for (size_t i = 0; i < good.size(); i += 7) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    Dump(path, bad);
    FusedEmbeddingTable out;
    EXPECT_FALSE(FusedEmbeddingTable::Load(path, &out).ok())
        << "bit flip at byte " << i << " was accepted";
  }
  std::remove(path.c_str());
}

TEST(FusedTableFormatTest, TruncationIsCorruption) {
  const std::string path = TmpPath("truncated");
  ASSERT_TRUE(SyntheticTable().Save(path).ok());
  const std::string good = Slurp(path);
  for (const size_t keep : {good.size() - 1, good.size() / 2, size_t{4}}) {
    Dump(path, good.substr(0, keep));
    FusedEmbeddingTable out;
    EXPECT_EQ(FusedEmbeddingTable::Load(path, &out).code(),
              Status::Code::kCorruption)
        << "truncated to " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(FusedTableFormatTest, BadMagicIsCorruption) {
  const std::string path = TmpPath("magic");
  ASSERT_TRUE(SyntheticTable().Save(path).ok());
  std::string bad = Slurp(path);
  bad[0] = 'X';
  Dump(path, bad);
  FusedEmbeddingTable out;
  EXPECT_EQ(FusedEmbeddingTable::Load(path, &out).code(),
            Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(FusedTableFormatTest, TrailingBytesAreCorruption) {
  const std::string path = TmpPath("trailing");
  ASSERT_TRUE(SyntheticTable().Save(path).ok());
  std::string padded = Slurp(path);
  padded.push_back('\0');
  Dump(path, padded);
  FusedEmbeddingTable out;
  EXPECT_EQ(FusedEmbeddingTable::Load(path, &out).code(),
            Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(FusedTableFormatTest, MissingFileIsAnError) {
  FusedEmbeddingTable out;
  EXPECT_FALSE(
      FusedEmbeddingTable::Load(TmpPath("never_written"), &out).ok());
}

}  // namespace
}  // namespace came::infer
