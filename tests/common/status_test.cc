#include "common/status.h"

#include <gtest/gtest.h>

namespace came {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::IOError("x").ToString(), "IOError: x");
  EXPECT_EQ(Status::Corruption("x").ToString(), "Corruption: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
}

Status Propagates(bool fail) {
  CAME_RETURN_IF_ERROR(fail ? Status::IOError("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(false).ok());
  Status s = Propagates(true);
  EXPECT_EQ(s.code(), Status::Code::kIOError);
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusTest, LogIfErrorIsSilentOnOk) {
  ::testing::internal::CaptureStderr();
  Status::OK().LogIfError("should never appear");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(StatusTest, LogIfErrorEmitsContextAndMessage) {
  // The sanctioned way to drop a Status is LogIfError (class-level
  // [[nodiscard]] plus the S1 lint rule forbid silent discards); it must
  // actually surface the error it swallows.
  ::testing::internal::CaptureStderr();
  Status::IOError("disk gone").LogIfError("Flush");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("Flush"), std::string::npos) << err;
  EXPECT_NE(err.find("IOError: disk gone"), std::string::npos) << err;
}

TEST(ResultTest, HoldsValueWhenOk) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatusWhenFailed) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace came
