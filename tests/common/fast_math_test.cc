#include "common/fast_math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace came {
namespace {

TEST(FastExpTest, RelativeErrorSmallOverWorkingRange) {
  // The attention kernel feeds arguments in (-inf, 0] after max
  // subtraction; check a generous range.
  for (float x = -20.0f; x <= 0.0f; x += 0.01f) {
    const float exact = std::exp(x);
    const float fast = FastExp(x);
    EXPECT_NEAR(fast, exact, exact * 5e-4f + 1e-12f) << "x=" << x;
  }
}

TEST(FastExpTest, PositiveRangeStillAccurate) {
  for (float x = 0.0f; x <= 10.0f; x += 0.05f) {
    const float exact = std::exp(x);
    EXPECT_NEAR(FastExp(x) / exact, 1.0f, 5e-4f) << "x=" << x;
  }
}

TEST(FastExpTest, UnderflowClampsToZero) {
  EXPECT_EQ(FastExp(-100.0f), 0.0f);
  EXPECT_EQ(FastExp(-1e10f), 0.0f);
}

TEST(FastExpTest, LargePositiveSaturatesFinite) {
  const float v = FastExp(1000.0f);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 1e30f);
}

TEST(FastExpTest, ExpZeroIsOne) { EXPECT_NEAR(FastExp(0.0f), 1.0f, 1e-4f); }

TEST(FastExpTest, Monotonic) {
  float prev = FastExp(-10.0f);
  for (float x = -9.9f; x < 10.0f; x += 0.1f) {
    const float cur = FastExp(x);
    EXPECT_GE(cur, prev) << "x=" << x;
    prev = cur;
  }
}

}  // namespace
}  // namespace came
