#include "common/fast_math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace came {
namespace {

TEST(FastExpTest, RelativeErrorSmallOverWorkingRange) {
  // The attention kernel feeds arguments in (-inf, 0] after max
  // subtraction; check a generous range.
  for (float x = -20.0f; x <= 0.0f; x += 0.01f) {
    const float exact = std::exp(x);
    const float fast = FastExp(x);
    EXPECT_NEAR(fast, exact, exact * 5e-4f + 1e-12f) << "x=" << x;
  }
}

TEST(FastExpTest, PositiveRangeStillAccurate) {
  for (float x = 0.0f; x <= 10.0f; x += 0.05f) {
    const float exact = std::exp(x);
    EXPECT_NEAR(FastExp(x) / exact, 1.0f, 5e-4f) << "x=" << x;
  }
}

TEST(FastExpTest, UnderflowClampsToZero) {
  EXPECT_EQ(FastExp(-100.0f), 0.0f);
  EXPECT_EQ(FastExp(-1e10f), 0.0f);
}

TEST(FastExpTest, LargePositiveSaturatesFinite) {
  const float v = FastExp(1000.0f);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 1e30f);
}

TEST(FastExpTest, ExpZeroIsOne) { EXPECT_NEAR(FastExp(0.0f), 1.0f, 1e-4f); }

TEST(FastExpTest, NanPropagates) {
  // Pre-fix, NaN fell through to std::floor(NaN) -> static_cast<int32_t>,
  // which is UB and returned an arbitrary finite value, silently masking a
  // diverged attention logit. The UBSan CI job exercises this path.
  EXPECT_TRUE(std::isnan(FastExp(std::numeric_limits<float>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(FastExp(-std::numeric_limits<float>::quiet_NaN())));
}

TEST(FastExpTest, InfinitiesFollowClampPolicy) {
  // -inf underflows to exactly 0; +inf saturates at the finite exp(87)
  // cap (FastExp never returns inf), same as any argument above 87.
  EXPECT_EQ(FastExp(-std::numeric_limits<float>::infinity()), 0.0f);
  const float pos = FastExp(std::numeric_limits<float>::infinity());
  EXPECT_TRUE(std::isfinite(pos));
  EXPECT_GT(pos, 1e30f);
  EXPECT_EQ(pos, FastExp(88.0f));  // both clamp to the x=87 value
}

TEST(FastExpTest, ClampBoundaryIsTight) {
  // Just inside the clamp window the approximation still tracks exp();
  // just outside it snaps to the clamp behaviour.
  EXPECT_NEAR(FastExp(-86.9f) / std::exp(-86.9f), 1.0f, 5e-4f);
  EXPECT_NEAR(FastExp(86.9f) / std::exp(86.9f), 1.0f, 5e-4f);
  EXPECT_EQ(FastExp(-87.1f), 0.0f);
  EXPECT_EQ(FastExp(87.1f), FastExp(87.0f));
  EXPECT_GT(FastExp(-87.0f), 0.0f);  // the boundary itself is not clamped
}

TEST(FastExpTest, Monotonic) {
  float prev = FastExp(-10.0f);
  for (float x = -9.9f; x < 10.0f; x += 0.1f) {
    const float cur = FastExp(x);
    EXPECT_GE(cur, prev) << "x=" << x;
    prev = cur;
  }
}

}  // namespace
}  // namespace came
