// Unit tests for the worker-pool ParallelFor primitive: exact static
// partitioning, bitwise determinism across thread counts, serial
// degradation, nesting, and exception propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "common/parallel_for.h"
#include "common/random.h"
#include "tensor/tensor_ops.h"

namespace came {
namespace {

// Every test leaves the pool at 1 thread so unrelated suites in this
// binary keep exercising the serial paths they were written against.
class ParallelForTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(1); }
};

// Runs fn over the range and returns the chunks it was handed, sorted.
std::vector<std::pair<int64_t, int64_t>> CollectChunks(int64_t begin,
                                                       int64_t end,
                                                       int64_t grain) {
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST_F(ParallelForTest, ChunksTileTheRangeExactly) {
  SetNumThreads(4);
  for (const auto& [begin, end, grain] :
       std::vector<std::tuple<int64_t, int64_t, int64_t>>{
           {0, 100, 7}, {0, 100, 1}, {5, 32, 8}, {0, 1, 1}, {-10, 10, 3}}) {
    const auto chunks = CollectChunks(begin, end, grain);
    ASSERT_FALSE(chunks.empty());
    EXPECT_EQ(chunks.front().first, begin);
    EXPECT_EQ(chunks.back().second, end);
    for (size_t i = 0; i < chunks.size(); ++i) {
      EXPECT_LT(chunks[i].first, chunks[i].second);
      EXPECT_LE(chunks[i].second - chunks[i].first, grain);
      if (i > 0) {
        EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
      }
    }
  }
}

TEST_F(ParallelForTest, PartitionIsIndependentOfThreadCount) {
  std::vector<std::vector<std::pair<int64_t, int64_t>>> per_count;
  for (int threads : {1, 2, 3, 8}) {
    SetNumThreads(threads);
    per_count.push_back(CollectChunks(0, 1000, 13));
  }
  for (size_t i = 1; i < per_count.size(); ++i) {
    EXPECT_EQ(per_count[i], per_count[0]) << "thread-count run " << i;
  }
}

TEST_F(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  SetNumThreads(4);
  std::vector<int> visits(977, 0);
  ParallelFor(0, 977, 10, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++visits[static_cast<size_t>(i)];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST_F(ParallelForTest, EmptyRangeNeverInvokes) {
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 2, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(ParallelForTest, SingleChunkRunsInline) {
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(0, 10, 100, [&](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelForTest, SerialPathWalksTheSameChunkGrid) {
  SetNumThreads(4);
  const auto parallel_chunks = CollectChunks(0, 100, 9);
  SetNumThreads(1);
  const auto serial_chunks = CollectChunks(0, 100, 9);
  EXPECT_EQ(serial_chunks, parallel_chunks);
}

TEST_F(ParallelForTest, MatMulIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(77);
  tensor::Tensor a({64, 96});
  tensor::Tensor b({96, 80});
  for (int64_t i = 0; i < a.numel(); ++i) {
    a.data()[i] = static_cast<float>(rng.Normal());
  }
  for (int64_t i = 0; i < b.numel(); ++i) {
    b.data()[i] = static_cast<float>(rng.Normal());
  }
  SetNumThreads(1);
  const tensor::Tensor serial = tensor::MatMul(a, b);
  const tensor::Tensor serial_t = tensor::MatMul(a, b, false, false);
  ASSERT_EQ(std::memcmp(serial.data(), serial_t.data(),
                        sizeof(float) * static_cast<size_t>(serial.numel())),
            0);
  for (int threads : {2, 3, 7}) {
    SetNumThreads(threads);
    const tensor::Tensor parallel = tensor::MatMul(a, b);
    EXPECT_EQ(
        std::memcmp(serial.data(), parallel.data(),
                    sizeof(float) * static_cast<size_t>(serial.numel())),
        0)
        << "threads=" << threads;
    // trans_b branch: MatMul(a, b^T) with trans_b hits the dot-product path.
    const tensor::Tensor bt = tensor::Transpose2D(b);
    const tensor::Tensor parallel_tb = tensor::MatMul(a, bt, false, true);
    EXPECT_EQ(
        std::memcmp(serial.data(), parallel_tb.data(),
                    sizeof(float) * static_cast<size_t>(serial.numel())),
        0)
        << "threads=" << threads << " (trans_b)";
  }
}

TEST_F(ParallelForTest, NestedCallDegradesToSerialWithoutDeadlock) {
  SetNumThreads(4);
  std::vector<int> visits(40 * 25, 0);
  ParallelFor(0, 40, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t outer = lo; outer < hi; ++outer) {
      ParallelFor(0, 25, 1, [&](int64_t ilo, int64_t ihi) {
        for (int64_t inner = ilo; inner < ihi; ++inner) {
          ++visits[static_cast<size_t>(outer * 25 + inner)];
        }
      });
    }
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST_F(ParallelForTest, WorkerExceptionPropagatesToCaller) {
  SetNumThreads(4);
  EXPECT_THROW(ParallelFor(0, 100, 1,
                           [&](int64_t lo, int64_t) {
                             if (lo == 57) {
                               throw std::runtime_error("chunk 57 failed");
                             }
                           }),
               std::runtime_error);
  // The pool must survive a failed task and run the next one normally.
  std::vector<int> visits(64, 0);
  ParallelFor(0, 64, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++visits[static_cast<size_t>(i)];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST_F(ParallelForTest, SetNumThreadsClampsToOne) {
  SetNumThreads(-3);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(2);
  EXPECT_EQ(NumThreads(), 2);
}

}  // namespace
}  // namespace came
