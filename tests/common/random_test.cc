#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace came {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, StateRoundTripContinuesTheStream) {
  // A generator restored from GetState() must produce the exact stream the
  // donor would have produced — the property checkpoint/resume depends on.
  Rng donor(42);
  for (int i = 0; i < 37; ++i) donor.NextU64();  // advance arbitrarily
  const Rng::State snap = donor.GetState();
  Rng resumed(999);  // deliberately different seed before restore
  resumed.SetState(snap);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(resumed.NextU64(), donor.NextU64());
}

TEST(RngTest, StateCapturesTheBoxMullerCache) {
  // Normal() produces two values per Box-Muller round and caches the
  // second; saving mid-pair must preserve that parity or the resumed
  // stream shifts by one draw.
  Rng donor(5);
  (void)donor.Normal();  // cache now holds the spare value
  const Rng::State snap = donor.GetState();
  EXPECT_TRUE(snap.has_cached_normal);
  Rng resumed(6);
  resumed.SetState(snap);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(resumed.Normal(), donor.Normal()) << "draw " << i;
  }
}

TEST(RngTest, SetStateOverridesSeedEntirely) {
  Rng a(1);
  Rng b(2);
  b.SetState(a.GetState());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformU64Range) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformU64(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(5);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.UniformDouble();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ZipfIsLongTailed) {
  Rng rng(23);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(100, 1.2)];
  // Head index should be far more frequent than a mid-tail index.
  EXPECT_GT(counts[0], counts[20] * 3);
  for (const auto& [k, _] : counts) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 100);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(29);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int c0 = 0;
  int c1 = 0;
  int c2 = 0;
  for (int i = 0; i < 10000; ++i) {
    switch (rng.Categorical(w)) {
      case 0:
        ++c0;
        break;
      case 1:
        ++c1;
        break;
      default:
        ++c2;
    }
  }
  EXPECT_EQ(c1, 0);
  EXPECT_NEAR(static_cast<double>(c2) / (c0 + c2), 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace came
