#include "common/table_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace came {
namespace {

TEST(TableWriterTest, AsciiContainsHeaderAndRows) {
  TableWriter t({"Model", "MRR"});
  t.AddRow({"CamE", "50.4"});
  t.AddRow({"ConvE", "44.1"});
  const std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("Model"), std::string::npos);
  EXPECT_NE(ascii.find("CamE"), std::string::npos);
  EXPECT_NE(ascii.find("44.1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableWriterTest, CsvFormat) {
  TableWriter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableWriterTest, NumFormatsPrecision) {
  EXPECT_EQ(TableWriter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::Num(50.0), "50.0");
}

TEST(TableWriterTest, WriteCsvRoundTrip) {
  TableWriter t({"x"});
  t.AddRow({"7"});
  const std::string path = "/tmp/came_table_writer_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "7");
  std::remove(path.c_str());
}

TEST(TableWriterTest, WriteCsvToBadPathFails) {
  TableWriter t({"x"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir/f.csv").ok());
}

}  // namespace
}  // namespace came
