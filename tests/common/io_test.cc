#include "common/io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

namespace came::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "came_io_" + name + "." +
         std::to_string(::getpid());
}

std::string MustRead(const std::string& path) {
  std::string out;
  const Status st = ReadFile(path, &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(Crc32Test, KnownVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  uint32_t running = 0;
  for (size_t i = 0; i < data.size(); i += 7) {
    const size_t n = std::min<size_t>(7, data.size() - i);
    running = Crc32(data.data() + i, n, running);
  }
  EXPECT_EQ(running, whole);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(64, 'x');
  const uint32_t clean = Crc32(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1;
    EXPECT_NE(Crc32(data.data(), data.size()), clean) << "flip at " << i;
    data[i] ^= 1;
  }
}

TEST(FileWriterTest, WritesAndReportsBytes) {
  const std::string path = TempPath("writer");
  FileWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.Append("hello ", 6).ok());
  ASSERT_TRUE(w.Append("world", 5).ok());
  EXPECT_EQ(w.bytes_written(), 11u);
  ASSERT_TRUE(w.Sync().ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(MustRead(path), "hello world");
  ::unlink(path.c_str());
}

TEST(FileWriterTest, OpsOnClosedWriterFail) {
  FileWriter w;
  EXPECT_FALSE(w.Append("x", 1).ok());
  EXPECT_FALSE(w.Sync().ok());
  EXPECT_FALSE(w.Close().ok());
}

TEST(ReadFileTest, MissingFileIsIOError) {
  std::string out;
  const Status st = ReadFile("/nonexistent/came/io/file", &out);
  EXPECT_EQ(st.code(), Status::Code::kIOError);
}

TEST(AtomicWriteTest, ReplacesContentsAtomically) {
  const std::string path = TempPath("atomic");
  ASSERT_TRUE(WriteFileAtomic(path, "old", 3).ok());
  ASSERT_TRUE(WriteFileAtomic(path, "newer", 5).ok());
  EXPECT_EQ(MustRead(path), "newer");
  ::unlink(path.c_str());
}

TEST(AtomicWriteTest, AbortLeavesDestinationUntouched) {
  const std::string path = TempPath("abort");
  ASSERT_TRUE(WriteFileAtomic(path, "good", 4).ok());
  {
    AtomicFileWriter w(path);
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("partial garbage", 15).ok());
    w.Abort();
  }
  EXPECT_EQ(MustRead(path), "good");
  ::unlink(path.c_str());
}

TEST(AtomicWriteTest, AbortUnderFailingCloseLogsInsteadOfSwallowing) {
  // Abort runs on error paths where Close itself can fail (here: the crash
  // failpoint poisons every subsequent fd operation). The failure must be
  // surfaced through Status::LogIfError — not silently discarded — and the
  // destination must stay untouched.
  const std::string path = TempPath("abort_failing_close");
  ASSERT_TRUE(WriteFileAtomic(path, "good", 4).ok());
  {
    AtomicFileWriter w(path);
    ASSERT_TRUE(w.Open().ok());
    ScopedFailpoint fp({FailpointKind::kCrashAfterBytes, 2});
    Status append = w.Append("doomed", 6);
    EXPECT_FALSE(append.ok());
    ::testing::internal::CaptureStderr();
    w.Abort();
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("AtomicFileWriter::Abort"), std::string::npos) << err;
  }
  EXPECT_EQ(MustRead(path), "good");
  ::unlink(path.c_str());
}

TEST(AtomicWriteTest, DestructorAbortsUncommittedWrite) {
  const std::string path = TempPath("dtor");
  ASSERT_TRUE(WriteFileAtomic(path, "good", 4).ok());
  {
    AtomicFileWriter w(path);
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("doomed", 6).ok());
  }
  EXPECT_EQ(MustRead(path), "good");
  ::unlink(path.c_str());
}

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("failpoint");
    ASSERT_TRUE(WriteFileAtomic(path_, "previous good", 13).ok());
  }
  void TearDown() override { ::unlink(path_.c_str()); }
  std::string path_;
};

TEST_F(FailpointTest, ShortWritePersistsPrefixAndErrors) {
  const std::string raw = TempPath("short_raw");
  {
    ScopedFailpoint fp({FailpointKind::kShortWrite, 4});
    FileWriter w;
    ASSERT_TRUE(w.Open(raw).ok());
    const Status st = w.Append("0123456789", 10);
    EXPECT_EQ(st.code(), Status::Code::kIOError);
    EXPECT_EQ(w.bytes_written(), 4u);  // torn: only the prefix landed
    EXPECT_TRUE(w.Close().ok());  // fd itself is healthy after a short write
  }
  EXPECT_EQ(MustRead(raw), "0123");
  ::unlink(raw.c_str());
}

TEST_F(FailpointTest, EnospcPersistsNothingPastThreshold) {
  const std::string raw = TempPath("enospc_raw");
  {
    ScopedFailpoint fp({FailpointKind::kEnospc, 4});
    FileWriter w;
    ASSERT_TRUE(w.Open(raw).ok());
    ASSERT_TRUE(w.Append("0123", 4).ok());  // exactly at the limit: fine
    const Status st = w.Append("4567", 4);
    EXPECT_EQ(st.code(), Status::Code::kIOError);
    EXPECT_EQ(w.bytes_written(), 4u);
    EXPECT_TRUE(w.Close().ok());  // ENOSPC injection does not poison the fd
  }
  EXPECT_EQ(MustRead(raw), "0123");
  ::unlink(raw.c_str());
}

TEST_F(FailpointTest, CrashKillsEverySubsequentOperation) {
  ScopedFailpoint fp({FailpointKind::kCrashAfterBytes, 2});
  FileWriter w;
  const std::string raw = TempPath("crash_raw");
  ASSERT_TRUE(w.Open(raw).ok());
  EXPECT_FALSE(w.Append("abcdef", 6).ok());
  EXPECT_FALSE(w.Append("x", 1).ok());
  EXPECT_FALSE(w.Sync().ok());
  EXPECT_FALSE(w.Close().ok());
  ::unlink(raw.c_str());
}

TEST_F(FailpointTest, AtomicWriterNeverTearsTheDestination) {
  // Whatever the fault and wherever it lands, the destination either keeps
  // its previous contents (commit failed) or holds the complete new ones.
  const std::string fresh = "replacement contents";
  for (const FailpointKind kind :
       {FailpointKind::kShortWrite, FailpointKind::kEnospc,
        FailpointKind::kCrashAfterBytes}) {
    for (uint64_t at = 0; at <= fresh.size() + 1; ++at) {
      Status st;
      {
        ScopedFailpoint fp({kind, at});
        st = WriteFileAtomic(path_, fresh.data(), fresh.size());
      }
      const std::string now = MustRead(path_);
      if (st.ok()) {
        EXPECT_EQ(now, fresh);
        // Re-arm the previous contents for the next iteration.
        ASSERT_TRUE(WriteFileAtomic(path_, "previous good", 13).ok());
      } else {
        EXPECT_EQ(now, "previous good")
            << "torn destination, kind=" << static_cast<int>(kind)
            << " at=" << at;
      }
    }
  }
}

}  // namespace
}  // namespace came::io
