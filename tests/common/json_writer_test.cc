#include "common/json_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace came {
namespace {

TEST(JsonWriterTest, NestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("micro_ops");
  w.Key("shapes");
  w.BeginArray();
  w.BeginObject();
  w.Key("m");
  w.Int(512);
  w.Key("gflops");
  w.Double(61.5);
  w.EndObject();
  w.EndArray();
  w.Key("ok");
  w.Bool(true);
  w.Key("none");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.Str(),
            "{\n"
            "  \"bench\": \"micro_ops\",\n"
            "  \"shapes\": [\n"
            "    {\n"
            "      \"m\": 512,\n"
            "      \"gflops\": 61.5\n"
            "    }\n"
            "  ],\n"
            "  \"ok\": true,\n"
            "  \"none\": null\n"
            "}");
}

TEST(JsonWriterTest, EmptyContainersStayOnOneLine) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.EndArray();
  w.Key("o");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.Str(), "{\n  \"a\": [],\n  \"o\": {}\n}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.String("a\"b\\c\nd\x01");
  EXPECT_EQ(w.Str(), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(1.5);
  w.EndArray();
  EXPECT_EQ(w.Str(), "[\n  null,\n  null,\n  1.5\n]");
}

TEST(JsonWriterTest, WriteFileRoundTrips) {
  JsonWriter w;
  w.BeginObject();
  w.Key("x");
  w.Int(1);
  w.EndObject();
  const std::string path = ::testing::TempDir() + "/json_writer_test.json";
  ASSERT_TRUE(w.WriteFile(path));
  std::ifstream f(path);
  std::stringstream got;
  got << f.rdbuf();
  EXPECT_EQ(got.str(), w.Str() + "\n");
  std::remove(path.c_str());
}

TEST(JsonWriterDeathTest, ValueWithoutKeyInObjectDies) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_DEATH(w.Int(1), "without a Key");
}

TEST(JsonWriterDeathTest, StrBeforeCloseDies) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_DEATH(w.Str(), "not closed");
}

}  // namespace
}  // namespace came
