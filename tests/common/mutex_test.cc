#include "common/mutex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace came {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::thread other([&] {
    // Held by the main thread: TryLock must fail without blocking.
    EXPECT_FALSE(mu.TryLock());
  });
  other.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mu;
  int64_t counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, NotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  waiters.reserve(3);
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(awake, 3);
}

// --- lock-order validator (CAME_DEADLOCK_CHECK) ---------------------------

using MutexDeathTest = ::testing::Test;

TEST(MutexDeathTest, OrderInversionAborts) {
  // The binary runs threaded tests; fork-based death tests need the
  // threadsafe (re-exec) style to be reliable.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A->B then B->A is the ABBA deadlock shape; the validator must abort on
  // the second pattern even though this single thread never deadlocks.
  EXPECT_DEATH(
      {
        SetDeadlockCheckEnabled(true);
        Mutex a;
        Mutex b;
        {
          MutexLock la(&a);
          MutexLock lb(&b);  // records edge a -> b
        }
        {
          MutexLock lb(&b);
          MutexLock la(&a);  // inversion: b -> a while a -> b exists
        }
      },
      "lock-order inversion");
}

TEST(MutexTest, ConsistentOrderPassesValidator) {
  SetDeadlockCheckEnabled(true);
  Mutex a;
  Mutex b;
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  // Same order from another thread: still consistent, still no abort.
  std::thread t([&] {
    MutexLock la(&a);
    MutexLock lb(&b);
  });
  t.join();
  SetDeadlockCheckEnabled(false);
}

TEST(MutexTest, ValidatorTracksCondVarHandoff) {
  // Waiting releases the mutex; the validator must not treat the
  // re-acquisition after wakeup as holding the mutex across the wait
  // (which would manufacture phantom edges against locks the waker takes).
  SetDeadlockCheckEnabled(true);
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
  }
  producer.join();
  SetDeadlockCheckEnabled(false);
}

Mutex* TlsTestMutex() {
  static Mutex* mu = new Mutex;  // leaked: outlives every thread
  return mu;
}

struct LocksFromTlsDtor {
  ~LocksFromTlsDtor() { MutexLock lock(TlsTestMutex()); }
};

TEST(MutexTest, ValidatorSurvivesLocksFromTlsDestructors) {
  // Regression: thread_local objects elsewhere (the storage pool's
  // ThreadCache) lock a came::Mutex from their destructors. The TLS dtor
  // phase runs destructors in reverse construction order, so the
  // validator's own per-thread state — constructed *after* such an object
  // on first lock below — is torn down first; it must tolerate being used
  // afterwards (heap corruption here once escaped to came_cli eval).
  SetDeadlockCheckEnabled(true);
  std::thread t([] {
    thread_local LocksFromTlsDtor flusher;
    (void)&flusher;  // force TLS construction before the first lock
    MutexLock lock(TlsTestMutex());
  });
  t.join();
  SetDeadlockCheckEnabled(false);
}

TEST(MutexTest, DestroyedMutexDropsItsEdges) {
  SetDeadlockCheckEnabled(true);
  Mutex a;
  {
    Mutex b;
    MutexLock la(&a);
    MutexLock lb(&b);  // edge a -> b, dropped when b dies
  }
  {
    // A fresh mutex may reuse b's address; with stale edges this could
    // false-positive. Locking in the "reverse" direction must be fine.
    Mutex c;
    MutexLock lc(&c);
    MutexLock la(&a);
  }
  SetDeadlockCheckEnabled(false);
}

}  // namespace
}  // namespace came
