#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "kg/dataset.h"
#include "kg/filter_index.h"
#include "kg/triple_store.h"
#include "kg/vocab.h"

namespace came::kg {
namespace {

TEST(VocabTest, EntityRoundTrip) {
  Vocab v;
  const int64_t a = v.AddEntity("Aspirin", EntityType::kCompound);
  const int64_t b = v.AddEntity("TP53", EntityType::kGene);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(v.AddEntity("Aspirin", EntityType::kCompound), a);  // dedup
  EXPECT_EQ(v.EntityId("TP53"), b);
  EXPECT_EQ(v.EntityId("missing"), -1);
  EXPECT_EQ(v.EntityName(a), "Aspirin");
  EXPECT_EQ(v.entity_type(b), EntityType::kGene);
  EXPECT_EQ(v.num_entities(), 2);
}

TEST(VocabTest, RelationRoundTrip) {
  Vocab v;
  EXPECT_EQ(v.AddRelation("treats"), 0);
  EXPECT_EQ(v.AddRelation("causes"), 1);
  EXPECT_EQ(v.AddRelation("treats"), 0);
  EXPECT_EQ(v.RelationName(1), "causes");
  EXPECT_EQ(v.RelationId("missing"), -1);
}

TEST(VocabTest, EntitiesOfType) {
  Vocab v;
  v.AddEntity("c1", EntityType::kCompound);
  v.AddEntity("g1", EntityType::kGene);
  v.AddEntity("c2", EntityType::kCompound);
  auto compounds = v.EntitiesOfType(EntityType::kCompound);
  EXPECT_EQ(compounds, (std::vector<int64_t>{0, 2}));
}

TEST(TripleStoreTest, DedupsAndPreservesOrder) {
  TripleStore s;
  EXPECT_TRUE(s.Add({0, 1, 2}));
  EXPECT_TRUE(s.Add({2, 1, 0}));
  EXPECT_FALSE(s.Add({0, 1, 2}));
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s[0], (Triple{0, 1, 2}));
  EXPECT_TRUE(s.Contains({2, 1, 0}));
  EXPECT_FALSE(s.Contains({2, 0, 1}));
}

TEST(DatasetTest, InverseAugmentation) {
  Dataset ds;
  ds.vocab.AddEntity("a", EntityType::kGene);
  ds.vocab.AddEntity("b", EntityType::kGene);
  ds.vocab.AddRelation("r0");
  ds.vocab.AddRelation("r1");
  ds.train = {{0, 1, 1}};
  auto aug = ds.TrainWithInverses();
  ASSERT_EQ(aug.size(), 2u);
  EXPECT_EQ(aug[0], (Triple{0, 1, 1}));
  EXPECT_EQ(aug[1], (Triple{1, 3, 0}));  // inverse id = r + R
  EXPECT_EQ(ds.num_relations_with_inverses(), 4);
  EXPECT_EQ(ds.InverseRelation(1), 3);
  EXPECT_EQ(ds.InverseRelation(3), 1);
}

TEST(DatasetTest, SplitRatiosAndDisjointness) {
  std::vector<Triple> triples;
  for (int64_t i = 0; i < 1000; ++i) triples.push_back({i, 0, i + 1});
  Rng rng(9);
  std::vector<Triple> train;
  std::vector<Triple> valid;
  std::vector<Triple> test;
  SplitTriples(triples, &rng, &train, &valid, &test);
  EXPECT_EQ(train.size(), 800u);
  EXPECT_EQ(valid.size(), 100u);
  EXPECT_EQ(test.size(), 100u);
  TripleStore seen;
  for (const auto& t : train) EXPECT_TRUE(seen.Add(t));
  for (const auto& t : valid) EXPECT_TRUE(seen.Add(t));
  for (const auto& t : test) EXPECT_TRUE(seen.Add(t));
}

TEST(DatasetTest, SplitIsDeterministicPerSeed) {
  std::vector<Triple> triples;
  for (int64_t i = 0; i < 100; ++i) triples.push_back({i, 0, i + 1});
  Rng rng1(7);
  Rng rng2(7);
  std::vector<Triple> a1, b1, c1, a2, b2, c2;
  SplitTriples(triples, &rng1, &a1, &b1, &c1);
  SplitTriples(triples, &rng2, &a2, &b2, &c2);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(c1, c2);
}

TEST(DatasetTest, TsvRoundTrip) {
  Dataset ds;
  ds.name = "toy";
  ds.vocab.AddEntity("Aspirin", EntityType::kCompound);
  ds.vocab.AddEntity("TP53", EntityType::kGene);
  ds.vocab.AddRelation("targets");
  ds.train = {{0, 0, 1}};
  ds.valid = {};
  ds.test = {{1, 0, 0}};

  const std::string dir = "/tmp/came_kg_tsv_test";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(ds.SaveTsv(dir).ok());
  auto loaded = Dataset::LoadTsv(dir, "toy");
  ASSERT_TRUE(loaded.ok());
  const Dataset& l = loaded.value();
  EXPECT_EQ(l.vocab.num_entities(), 2);
  EXPECT_EQ(l.vocab.EntityName(0), "Aspirin");
  EXPECT_EQ(l.vocab.entity_type(1), EntityType::kGene);
  EXPECT_EQ(l.vocab.RelationName(0), "targets");
  ASSERT_EQ(l.train.size(), 1u);
  EXPECT_EQ(l.train[0], (Triple{0, 0, 1}));
  EXPECT_EQ(l.test[0], (Triple{1, 0, 0}));
  std::filesystem::remove_all(dir);
}

TEST(DatasetTest, LoadMissingDirFails) {
  auto r = Dataset::LoadTsv("/nonexistent_dir_xyz", "x");
  EXPECT_FALSE(r.ok());
}

TEST(FilterIndexTest, ForwardAndInversePostings) {
  FilterIndex idx(10, 2);
  idx.AddTriples({{1, 0, 3}, {1, 0, 5}, {2, 1, 3}});
  EXPECT_EQ(idx.Tails(1, 0), (std::vector<int64_t>{3, 5}));
  // Inverse relation id = rel + num_relations.
  EXPECT_EQ(idx.Tails(3, 2), (std::vector<int64_t>{1}));
  EXPECT_EQ(idx.Tails(3, 3), (std::vector<int64_t>{2}));
  EXPECT_TRUE(idx.Contains(1, 0, 5));
  EXPECT_FALSE(idx.Contains(1, 0, 4));
  EXPECT_TRUE(idx.Tails(9, 1).empty());
}

TEST(FilterIndexTest, DedupsPostings) {
  FilterIndex idx(4, 1);
  idx.AddTriples({{0, 0, 1}, {0, 0, 1}});
  EXPECT_EQ(idx.Tails(0, 0).size(), 1u);
}

TEST(FilterIndexTest, RejectsInverseRelationInput) {
  FilterIndex idx(4, 2);
  EXPECT_DEATH(idx.AddTriples({{0, 2, 1}}), "base relations");
}

}  // namespace
}  // namespace came::kg
