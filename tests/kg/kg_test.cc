#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "kg/dataset.h"
#include "kg/filter_index.h"
#include "kg/triple_store.h"
#include "kg/vocab.h"

namespace came::kg {
namespace {

TEST(VocabTest, EntityRoundTrip) {
  Vocab v;
  const int64_t a = v.AddEntity("Aspirin", EntityType::kCompound);
  const int64_t b = v.AddEntity("TP53", EntityType::kGene);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(v.AddEntity("Aspirin", EntityType::kCompound), a);  // dedup
  EXPECT_EQ(v.EntityId("TP53"), b);
  EXPECT_EQ(v.EntityId("missing"), -1);
  EXPECT_EQ(v.EntityName(a), "Aspirin");
  EXPECT_EQ(v.entity_type(b), EntityType::kGene);
  EXPECT_EQ(v.num_entities(), 2);
}

TEST(VocabTest, RelationRoundTrip) {
  Vocab v;
  EXPECT_EQ(v.AddRelation("treats"), 0);
  EXPECT_EQ(v.AddRelation("causes"), 1);
  EXPECT_EQ(v.AddRelation("treats"), 0);
  EXPECT_EQ(v.RelationName(1), "causes");
  EXPECT_EQ(v.RelationId("missing"), -1);
}

TEST(VocabTest, EntitiesOfType) {
  Vocab v;
  v.AddEntity("c1", EntityType::kCompound);
  v.AddEntity("g1", EntityType::kGene);
  v.AddEntity("c2", EntityType::kCompound);
  auto compounds = v.EntitiesOfType(EntityType::kCompound);
  EXPECT_EQ(compounds, (std::vector<int64_t>{0, 2}));
}

TEST(TripleStoreTest, DedupsAndPreservesOrder) {
  TripleStore s;
  EXPECT_TRUE(s.Add({0, 1, 2}));
  EXPECT_TRUE(s.Add({2, 1, 0}));
  EXPECT_FALSE(s.Add({0, 1, 2}));
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s[0], (Triple{0, 1, 2}));
  EXPECT_TRUE(s.Contains({2, 1, 0}));
  EXPECT_FALSE(s.Contains({2, 0, 1}));
}

TEST(DatasetTest, InverseAugmentation) {
  Dataset ds;
  ds.vocab.AddEntity("a", EntityType::kGene);
  ds.vocab.AddEntity("b", EntityType::kGene);
  ds.vocab.AddRelation("r0");
  ds.vocab.AddRelation("r1");
  ds.train = {{0, 1, 1}};
  auto aug = ds.TrainWithInverses();
  ASSERT_EQ(aug.size(), 2u);
  EXPECT_EQ(aug[0], (Triple{0, 1, 1}));
  EXPECT_EQ(aug[1], (Triple{1, 3, 0}));  // inverse id = r + R
  EXPECT_EQ(ds.num_relations_with_inverses(), 4);
  EXPECT_EQ(ds.InverseRelation(1), 3);
  EXPECT_EQ(ds.InverseRelation(3), 1);
}

TEST(DatasetTest, SplitRatiosAndDisjointness) {
  std::vector<Triple> triples;
  for (int64_t i = 0; i < 1000; ++i) triples.push_back({i, 0, i + 1});
  Rng rng(9);
  std::vector<Triple> train;
  std::vector<Triple> valid;
  std::vector<Triple> test;
  SplitTriples(triples, &rng, &train, &valid, &test);
  EXPECT_EQ(train.size(), 800u);
  EXPECT_EQ(valid.size(), 100u);
  EXPECT_EQ(test.size(), 100u);
  TripleStore seen;
  for (const auto& t : train) EXPECT_TRUE(seen.Add(t));
  for (const auto& t : valid) EXPECT_TRUE(seen.Add(t));
  for (const auto& t : test) EXPECT_TRUE(seen.Add(t));
}

TEST(DatasetTest, SplitIsDeterministicPerSeed) {
  std::vector<Triple> triples;
  for (int64_t i = 0; i < 100; ++i) triples.push_back({i, 0, i + 1});
  Rng rng1(7);
  Rng rng2(7);
  std::vector<Triple> a1, b1, c1, a2, b2, c2;
  SplitTriples(triples, &rng1, &a1, &b1, &c1);
  SplitTriples(triples, &rng2, &a2, &b2, &c2);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(c1, c2);
}

TEST(DatasetTest, TsvRoundTrip) {
  Dataset ds;
  ds.name = "toy";
  ds.vocab.AddEntity("Aspirin", EntityType::kCompound);
  ds.vocab.AddEntity("TP53", EntityType::kGene);
  ds.vocab.AddRelation("targets");
  ds.train = {{0, 0, 1}};
  ds.valid = {};
  ds.test = {{1, 0, 0}};

  const std::string dir = "/tmp/came_kg_tsv_test";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(ds.SaveTsv(dir).ok());
  auto loaded = Dataset::LoadTsv(dir, "toy");
  ASSERT_TRUE(loaded.ok());
  const Dataset& l = loaded.value();
  EXPECT_EQ(l.vocab.num_entities(), 2);
  EXPECT_EQ(l.vocab.EntityName(0), "Aspirin");
  EXPECT_EQ(l.vocab.entity_type(1), EntityType::kGene);
  EXPECT_EQ(l.vocab.RelationName(0), "targets");
  ASSERT_EQ(l.train.size(), 1u);
  EXPECT_EQ(l.train[0], (Triple{0, 0, 1}));
  EXPECT_EQ(l.test[0], (Triple{1, 0, 0}));
  std::filesystem::remove_all(dir);
}

TEST(DatasetTest, LoadMissingDirFails) {
  auto r = Dataset::LoadTsv("/nonexistent_dir_xyz", "x");
  EXPECT_FALSE(r.ok());
}

// Writes a structurally valid 2-entity / 1-relation dataset, then lets
// each test overwrite one file with malformed content.
class DatasetMalformedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("came_dataset_malformed_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    Dataset ds;
    ds.name = "toy";
    ds.vocab.AddEntity("Aspirin", EntityType::kCompound);
    ds.vocab.AddEntity("TP53", EntityType::kGene);
    ds.vocab.AddRelation("targets");
    ds.train = {{0, 0, 1}};
    ds.test = {{1, 0, 0}};
    ASSERT_TRUE(ds.SaveTsv(dir_.string()).ok());
    ASSERT_TRUE(Dataset::LoadTsv(dir_.string(), "toy").ok());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  void Overwrite(const std::string& file, const std::string& content) {
    std::ofstream out(dir_ / file, std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good());
  }

  Status LoadStatus() {
    return Dataset::LoadTsv(dir_.string(), "toy").status();
  }

  void ExpectCorrupt(const std::string& want_substring) {
    const Status st = LoadStatus();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
    EXPECT_NE(st.ToString().find(want_substring), std::string::npos)
        << st.ToString();
  }

  std::filesystem::path dir_;
};

TEST_F(DatasetMalformedTest, TruncatedTripleLine) {
  Overwrite("train.tsv", "0\t0\n");
  ExpectCorrupt("expected 3 tab-separated fields");
}

TEST_F(DatasetMalformedTest, NonNumericTripleIds) {
  Overwrite("train.tsv", "0\tzero\t1\n");
  ExpectCorrupt("non-numeric relation id");
  Overwrite("train.tsv", "x\t0\t1\n");
  ExpectCorrupt("non-numeric head id");
  Overwrite("train.tsv", "0\t0\t1x\n");
  ExpectCorrupt("non-numeric tail id");
}

TEST_F(DatasetMalformedTest, OutOfRangeIds) {
  Overwrite("train.tsv", "0\t0\t2\n");  // only 2 entities: ids 0 and 1
  ExpectCorrupt("tail id 2 out of range");
  Overwrite("train.tsv", "0\t1\t1\n");  // only relation 0 exists
  ExpectCorrupt("relation id 1 out of range");
  Overwrite("train.tsv", "-1\t0\t1\n");
  ExpectCorrupt("head id -1 out of range");
  // An id past int64 must fail as a parse error, not wrap around.
  Overwrite("train.tsv", "99999999999999999999999\t0\t1\n");
  ExpectCorrupt("head id");
}

TEST_F(DatasetMalformedTest, DuplicateEntityName) {
  Overwrite("entities.tsv", "0\tAspirin\t1\n1\tAspirin\t0\n");
  ExpectCorrupt("duplicate entity name");
}

TEST_F(DatasetMalformedTest, DuplicateRelationName) {
  Overwrite("relations.tsv", "0\ttargets\n1\ttargets\n");
  ExpectCorrupt("duplicate relation name");
}

TEST_F(DatasetMalformedTest, NonDenseEntityIds) {
  Overwrite("entities.tsv", "0\tAspirin\t1\n5\tTP53\t0\n");
  ExpectCorrupt("non-dense entity ids");
}

TEST_F(DatasetMalformedTest, InvalidEntityType) {
  Overwrite("entities.tsv", "0\tAspirin\t99\n1\tTP53\t0\n");
  ExpectCorrupt("invalid entity type");
  Overwrite("entities.tsv", "0\tAspirin\tabc\n1\tTP53\t0\n");
  ExpectCorrupt("invalid entity type");
}

TEST_F(DatasetMalformedTest, EmptyNamesRejected) {
  Overwrite("entities.tsv", "0\t\t1\n1\tTP53\t0\n");
  ExpectCorrupt("empty entity name");
  // Restore a valid entity file; now break relations.
  Overwrite("entities.tsv", "0\tAspirin\t1\n1\tTP53\t0\n");
  Overwrite("relations.tsv", "0\t\n");
  ExpectCorrupt("empty relation name");
}

TEST_F(DatasetMalformedTest, EmptyVocabRejected) {
  Overwrite("entities.tsv", "");
  ExpectCorrupt("no entities");
}

TEST_F(DatasetMalformedTest, CrlfLinesStillParse) {
  Overwrite("train.tsv", "0\t0\t1\r\n");
  const auto loaded = Dataset::LoadTsv(dir_.string(), "toy");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().train.size(), 1u);
  EXPECT_EQ(loaded.value().train[0], (Triple{0, 0, 1}));
}

std::vector<int64_t> ToVec(std::span<const int64_t> s) {
  return {s.begin(), s.end()};
}

TEST(FilterIndexTest, ForwardAndInversePostings) {
  FilterIndex idx(10, 2);
  idx.AddTriples({{1, 0, 3}, {1, 0, 5}, {2, 1, 3}});
  EXPECT_EQ(ToVec(idx.Tails(1, 0)), (std::vector<int64_t>{3, 5}));
  // Inverse relation id = rel + num_relations.
  EXPECT_EQ(ToVec(idx.Tails(3, 2)), (std::vector<int64_t>{1}));
  EXPECT_EQ(ToVec(idx.Tails(3, 3)), (std::vector<int64_t>{2}));
  EXPECT_TRUE(idx.Contains(1, 0, 5));
  EXPECT_FALSE(idx.Contains(1, 0, 4));
  EXPECT_TRUE(idx.Tails(9, 1).empty());
}

TEST(FilterIndexTest, DedupsPostings) {
  FilterIndex idx(4, 1);
  idx.AddTriples({{0, 0, 1}, {0, 0, 1}});
  EXPECT_EQ(idx.Tails(0, 0).size(), 1u);
}

TEST(FilterIndexTest, IncrementalAddsMerge) {
  FilterIndex idx(10, 1);
  idx.AddTriples({{1, 0, 5}});
  idx.AddTriples({{1, 0, 3}, {1, 0, 5}});
  EXPECT_EQ(ToVec(idx.Tails(1, 0)), (std::vector<int64_t>{3, 5}));
  EXPECT_EQ(idx.num_postings(), 4);  // {1,0}->3,5 plus inverses
}

TEST(FilterIndexTest, EntityWithEveryTailKnown) {
  // Degenerate shape: one head related to every entity (itself included).
  FilterIndex idx(6, 1);
  std::vector<Triple> triples;
  for (int64_t t = 0; t < 6; ++t) triples.push_back({0, 0, t});
  idx.AddTriples(triples);
  EXPECT_EQ(ToVec(idx.Tails(0, 0)), (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
  for (int64_t t = 0; t < 6; ++t) EXPECT_TRUE(idx.Contains(0, 0, t));
  // Every entity's inverse posting for relation 1 is exactly {0}.
  for (int64_t t = 0; t < 6; ++t) {
    EXPECT_EQ(ToVec(idx.Tails(t, 1)), (std::vector<int64_t>{0}));
  }
}

TEST(FilterIndexTest, EmptyRelationHasNoPostings) {
  FilterIndex idx(8, 3);
  idx.AddTriples({{0, 0, 1}, {2, 2, 3}});
  // Relation 1 never appears: no key matches it, forward or inverse.
  for (int64_t h = 0; h < 8; ++h) {
    EXPECT_TRUE(idx.Tails(h, 1).empty());
    EXPECT_TRUE(idx.Tails(h, 1 + 3).empty());
    EXPECT_FALSE(idx.Contains(h, 1, 0));
  }
}

TEST(FilterIndexTest, InverseRoundTrip) {
  // Every forward posting (h, r) -> t must appear as (t, r + R) -> h and
  // vice versa — the inverse index is an involution.
  FilterIndex idx(12, 2);
  const std::vector<Triple> triples = {
      {1, 0, 3}, {1, 0, 7}, {3, 1, 1}, {5, 0, 5}, {11, 1, 0}};
  idx.AddTriples(triples);
  const int64_t R = 2;
  for (int64_t h = 0; h < 12; ++h) {
    for (int64_t r = 0; r < R; ++r) {
      for (int64_t t : idx.Tails(h, r)) {
        EXPECT_TRUE(idx.Contains(t, r + R, h))
            << "missing inverse of (" << h << "," << r << "," << t << ")";
      }
      for (int64_t t : idx.Tails(h, r + R)) {
        EXPECT_TRUE(idx.Contains(t, r, h))
            << "missing forward of inverse (" << h << "," << r << "," << t
            << ")";
      }
    }
  }
}

TEST(FilterIndexTest, TailsInRangeSubsetsPanel) {
  FilterIndex idx(100, 1);
  idx.AddTriples({{0, 0, 3}, {0, 0, 17}, {0, 0, 42}, {0, 0, 99}});
  EXPECT_EQ(ToVec(idx.TailsInRange(0, 0, 0, 100)),
            (std::vector<int64_t>{3, 17, 42, 99}));
  EXPECT_EQ(ToVec(idx.TailsInRange(0, 0, 10, 50)),
            (std::vector<int64_t>{17, 42}));
  EXPECT_EQ(ToVec(idx.TailsInRange(0, 0, 17, 18)),
            (std::vector<int64_t>{17}));
  EXPECT_TRUE(idx.TailsInRange(0, 0, 18, 42).empty());
  EXPECT_TRUE(idx.TailsInRange(5, 0, 0, 100).empty());
}

TEST(FilterIndexTest, RejectsInverseRelationInput) {
  FilterIndex idx(4, 2);
  EXPECT_DEATH(idx.AddTriples({{0, 2, 1}}), "base relations");
}

}  // namespace
}  // namespace came::kg
